package query

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Source is anything that serves snapshots: a Publisher or a ShardSet.
type Source interface {
	Current() *Snapshot
	NewQuerier() *Querier
}

// Handler serves the query tier over HTTP:
//
//	/query/classify?x=1,2,3       — argmax-posterior component (JSON)
//	/query/density?x=1,2,3        — log p(x) (JSON)
//	/query/topk?x=1,2,3&k=4       — k nearest components (JSON)
//	/query/snapshot               — snapshot metadata (JSON)
//	POST /query/batch             — binary batch protocol (see wire.go)
//
// All endpoints answer 503 until the first snapshot is published. Query
// scratch is pooled, so steady-state request handling does not allocate
// on the scoring path (the HTTP stack itself still allocates per
// request; the binary batch endpoint amortizes that across records).
func Handler(src Source) http.Handler {
	h := &httpHandler{src: src}
	h.pool.New = func() any { return src.NewQuerier() }
	mux := http.NewServeMux()
	mux.HandleFunc("/query/classify", h.classify)
	mux.HandleFunc("/query/density", h.density)
	mux.HandleFunc("/query/topk", h.topk)
	mux.HandleFunc("/query/snapshot", h.snapshot)
	mux.HandleFunc("/query/batch", h.batch)
	return mux
}

type httpHandler struct {
	src  Source
	pool sync.Pool // of *Querier
}

// observe records serve-time staleness when the source carries telemetry.
func (h *httpHandler) observe(sn *Snapshot) {
	switch s := h.src.(type) {
	case *Publisher:
		s.ObserveStaleness(sn)
	case *ShardSet:
		s.Merged().ObserveStaleness(sn)
	}
}

// acquire returns a pooled Querier plus the current snapshot; a nil
// snapshot means nothing is published and the caller already got a 503.
func (h *httpHandler) acquire(w http.ResponseWriter) (*Querier, *Snapshot) {
	sn := h.src.Current()
	if sn == nil {
		http.Error(w, "query: no snapshot published yet", http.StatusServiceUnavailable)
		return nil, nil
	}
	q := h.pool.Get().(*Querier)
	h.observe(sn)
	return q, sn
}

func (h *httpHandler) release(q *Querier) {
	q.Flush()
	h.pool.Put(q)
}

// parseX decodes the comma-separated x= query parameter into dim floats.
func parseX(r *http.Request, dim int) ([]float64, error) {
	raw := r.URL.Query().Get("x")
	if raw == "" {
		return nil, fmt.Errorf("missing x= parameter (comma-separated floats)")
	}
	parts := strings.Split(raw, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("x has %d values, snapshot dimension is %d", len(parts), dim)
	}
	x := make([]float64, dim)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("x[%d]: %v", i, err)
		}
		x[i] = v
	}
	return x, nil
}

func (h *httpHandler) classify(w http.ResponseWriter, r *http.Request) {
	q, sn := h.acquire(w)
	if q == nil {
		return
	}
	defer h.release(q)
	x, err := parseX(r, sn.Dim())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res := sn.Classify(x, q.scratch)
	q.nClassify++
	writeJSON(w, struct {
		Version      uint64  `json:"version"`
		Component    int     `json:"component"`
		LogPosterior float64 `json:"log_posterior"`
		LogDensity   float64 `json:"log_density"`
	}{sn.Version(), res.Component, res.LogPosterior, res.LogDensity})
}

func (h *httpHandler) density(w http.ResponseWriter, r *http.Request) {
	q, sn := h.acquire(w)
	if q == nil {
		return
	}
	defer h.release(q)
	x, err := parseX(r, sn.Dim())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ld := sn.LogDensity(x, q.scratch)
	q.nDensity++
	writeJSON(w, struct {
		Version    uint64  `json:"version"`
		LogDensity float64 `json:"log_density"`
	}{sn.Version(), ld})
}

func (h *httpHandler) topk(w http.ResponseWriter, r *http.Request) {
	q, sn := h.acquire(w)
	if q == nil {
		return
	}
	defer h.release(q)
	x, err := parseX(r, sn.Dim())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 3
	if s := r.URL.Query().Get("k"); s != "" {
		k, err = strconv.Atoi(s)
		if err != nil || k < 1 {
			http.Error(w, "bad k: must be a positive integer", http.StatusBadRequest)
			return
		}
	}
	nbrs := sn.TopK(x, k, q.scratch)
	q.nTopK++
	type nbr struct {
		Component int     `json:"component"`
		DistSq    float64 `json:"dist_sq"`
		Weight    float64 `json:"weight"`
	}
	out := make([]nbr, len(nbrs))
	for i, n := range nbrs {
		out[i] = nbr{n.ID, n.DistSq, sn.Weight(n.ID)}
	}
	writeJSON(w, struct {
		Version   uint64 `json:"version"`
		Neighbors []nbr  `json:"neighbors"`
	}{sn.Version(), out})
}

func (h *httpHandler) snapshot(w http.ResponseWriter, r *http.Request) {
	sn := h.src.Current()
	if sn == nil {
		http.Error(w, "query: no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, struct {
		Version     uint64  `json:"version"`
		K           int     `json:"k"`
		Dim         int     `json:"dim"`
		Mass        float64 `json:"mass"`
		PublishedAt float64 `json:"published_at"`
	}{sn.Version(), sn.K(), sn.Dim(), sn.Mass(), sn.PublishedAt()})
}

// Binary batch protocol (all little-endian):
//
//	request:  "CLUQ" | ver u8 (=1) | op u8 | k u16 | n u32 | dim u16 | n·dim f64
//	response: "CLUR" | ver u8 (=1) | op u8 | snapshot version u64 | n u32 | payload
//
// payload per record: classify → comp u32, log-posterior f64, log-density
// f64; density → f64; topk → k·(comp u32, dist² f64). One round trip
// scores n points, amortizing HTTP overhead to nothing at batch sizes in
// the hundreds.
const (
	OpClassify = 1
	OpDensity  = 2
	OpTopK     = 3

	batchMagicQ = "CLUQ"
	batchMagicR = "CLUR"
	batchVer    = 1
	// maxBatch bounds one request's record count (64 MiB of f64s at
	// dim=16) so a bad length prefix cannot balloon allocation.
	maxBatch = 1 << 19
)

func (h *httpHandler) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q, sn := h.acquire(w)
	if q == nil {
		return
	}
	defer h.release(q)

	var hdr [14]byte
	if _, err := io.ReadFull(r.Body, hdr[:]); err != nil {
		http.Error(w, "short batch header", http.StatusBadRequest)
		return
	}
	if string(hdr[0:4]) != batchMagicQ || hdr[4] != batchVer {
		http.Error(w, "bad batch magic/version", http.StatusBadRequest)
		return
	}
	op := int(hdr[5])
	k := int(binary.LittleEndian.Uint16(hdr[6:8]))
	n := int(binary.LittleEndian.Uint32(hdr[8:12]))
	dim := int(binary.LittleEndian.Uint16(hdr[12:14]))
	if dim != sn.Dim() {
		http.Error(w, fmt.Sprintf("batch dim %d, snapshot dim %d", dim, sn.Dim()), http.StatusBadRequest)
		return
	}
	if n < 1 || n > maxBatch {
		http.Error(w, fmt.Sprintf("batch n %d out of range [1,%d]", n, maxBatch), http.StatusBadRequest)
		return
	}
	if op == OpTopK && k < 1 {
		http.Error(w, "topk batch needs k >= 1", http.StatusBadRequest)
		return
	}
	raw := make([]byte, n*dim*8)
	if _, err := io.ReadFull(r.Body, raw); err != nil {
		http.Error(w, "short batch payload", http.StatusBadRequest)
		return
	}

	out := make([]byte, 0, 14+n*20)
	out = append(out, batchMagicR...)
	out = append(out, batchVer, byte(op))
	out = binary.LittleEndian.AppendUint64(out, sn.Version())
	out = binary.LittleEndian.AppendUint32(out, uint32(n))

	x := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			x[d] = math.Float64frombits(binary.LittleEndian.Uint64(raw[(i*dim+d)*8:]))
		}
		switch op {
		case OpClassify:
			res := sn.Classify(x, q.scratch)
			q.nClassify++
			out = binary.LittleEndian.AppendUint32(out, uint32(res.Component))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(res.LogPosterior))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(res.LogDensity))
		case OpDensity:
			ld := sn.LogDensity(x, q.scratch)
			q.nDensity++
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ld))
		case OpTopK:
			nbrs := sn.TopK(x, k, q.scratch)
			q.nTopK++
			// Pad with sentinel ^uint32(0) entries when k > K so every
			// record occupies exactly k slots and the client can index.
			for j := 0; j < k; j++ {
				if j < len(nbrs) {
					out = binary.LittleEndian.AppendUint32(out, uint32(nbrs[j].ID))
					out = binary.LittleEndian.AppendUint64(out, math.Float64bits(nbrs[j].DistSq))
				} else {
					out = binary.LittleEndian.AppendUint32(out, ^uint32(0))
					out = binary.LittleEndian.AppendUint64(out, math.Float64bits(math.Inf(1)))
				}
			}
		default:
			http.Error(w, fmt.Sprintf("unknown op %d", op), http.StatusBadRequest)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v) // best-effort, like telemetry's debug surface
}

// Server is a running query HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the query endpoints on addr (":0" for ephemeral) in a
// background goroutine.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(src), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) // returns when ln closes; nothing to report
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and closes idle connections.
func (s *Server) Close() error { return s.srv.Close() }
