package query

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"cludistream/internal/telemetry"
)

func TestHTTPUnavailableBeforePublish(t *testing.T) {
	srv := httptest.NewServer(Handler(NewPublisher(Options{})))
	defer srv.Close()
	for _, path := range []string{"/query/classify?x=1", "/query/density?x=1", "/query/topk?x=1", "/query/snapshot"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestHTTPJSONEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{Telemetry: reg})
	mix := randMixture(rng, 4, 2)
	if _, err := p.Publish(mix, 42, 500); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	var meta struct {
		Version uint64 `json:"version"`
		K       int    `json:"k"`
		Dim     int    `json:"dim"`
	}
	getJSON(t, srv.URL+"/query/snapshot", &meta)
	if meta.Version != 42 || meta.K != 4 || meta.Dim != 2 {
		t.Fatalf("snapshot meta = %+v", meta)
	}

	var cls struct {
		Version    uint64  `json:"version"`
		Component  int     `json:"component"`
		LogDensity float64 `json:"log_density"`
	}
	getJSON(t, srv.URL+"/query/classify?x=0,0", &cls)
	sc := NewScratch()
	want := p.Current().Classify([]float64{0, 0}, sc)
	if cls.Component != want.Component || cls.LogDensity != want.LogDensity || cls.Version != 42 {
		t.Fatalf("classify = %+v, want comp %d density %v", cls, want.Component, want.LogDensity)
	}

	var den struct {
		LogDensity float64 `json:"log_density"`
	}
	getJSON(t, srv.URL+"/query/density?x=1,-1", &den)
	if wantLD := p.Current().LogDensity([]float64{1, -1}, sc); den.LogDensity != wantLD {
		t.Fatalf("density = %v, want %v", den.LogDensity, wantLD)
	}

	var top struct {
		Neighbors []struct {
			Component int     `json:"component"`
			DistSq    float64 `json:"dist_sq"`
		} `json:"neighbors"`
	}
	getJSON(t, srv.URL+"/query/topk?x=0,0&k=2", &top)
	if len(top.Neighbors) != 2 {
		t.Fatalf("topk returned %d neighbors, want 2", len(top.Neighbors))
	}
	wantN := p.Current().TopK([]float64{0, 0}, 2, sc)
	if top.Neighbors[0].Component != wantN[0].ID || top.Neighbors[0].DistSq != wantN[0].DistSq {
		t.Fatalf("topk[0] = %+v, want %+v", top.Neighbors[0], wantN[0])
	}

	// Bad inputs: wrong dim, malformed float, bad k.
	for _, path := range []string{"/query/classify?x=1", "/query/classify?x=a,b", "/query/topk?x=0,0&k=0", "/query/density"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}

	// Per-request staleness is observed.
	if snap := reg.Snapshot(); snap.Histograms["query.staleness_seconds"].Count == 0 {
		t.Fatal("no staleness observations recorded")
	}
}

func TestHTTPBinaryBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := NewPublisher(Options{})
	mix := randMixture(rng, 5, 3)
	if _, err := p.Publish(mix, 3, 100); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	const n, dim = 17, 3
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = randPoint(rng, dim)
	}
	buildReq := func(op byte, k uint16) []byte {
		var buf bytes.Buffer
		buf.WriteString(batchMagicQ)
		buf.WriteByte(batchVer)
		buf.WriteByte(op)
		var hdr [8]byte
		binary.LittleEndian.PutUint16(hdr[0:2], k)
		binary.LittleEndian.PutUint32(hdr[2:6], n)
		binary.LittleEndian.PutUint16(hdr[6:8], dim)
		buf.Write(hdr[:])
		for _, x := range pts {
			for _, v := range x {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				buf.Write(b[:])
			}
		}
		return buf.Bytes()
	}
	post := func(body []byte) (*http.Response, []byte) {
		resp, err := http.Post(srv.URL+"/query/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	sc := NewScratch()

	// classify
	resp, out := post(buildReq(OpClassify, 0))
	if resp.StatusCode != 200 {
		t.Fatalf("classify batch: status %d: %s", resp.StatusCode, out)
	}
	if string(out[0:4]) != batchMagicR || out[4] != batchVer || out[5] != OpClassify {
		t.Fatalf("bad response header % x", out[:6])
	}
	if v := binary.LittleEndian.Uint64(out[6:14]); v != 3 {
		t.Fatalf("response version %d, want 3", v)
	}
	if c := binary.LittleEndian.Uint32(out[14:18]); c != n {
		t.Fatalf("response n %d, want %d", c, n)
	}
	rec := out[18:]
	for i, x := range pts {
		want := p.Current().Classify(x, sc)
		comp := binary.LittleEndian.Uint32(rec[i*20:])
		ld := math.Float64frombits(binary.LittleEndian.Uint64(rec[i*20+12:]))
		if int(comp) != want.Component || ld != want.LogDensity {
			t.Fatalf("record %d: comp %d density %v, want %d %v", i, comp, ld, want.Component, want.LogDensity)
		}
	}

	// density
	_, out = post(buildReq(OpDensity, 0))
	rec = out[18:]
	for i, x := range pts {
		got := math.Float64frombits(binary.LittleEndian.Uint64(rec[i*8:]))
		if want := p.Current().LogDensity(x, sc); got != want {
			t.Fatalf("density record %d: %v, want %v", i, got, want)
		}
	}

	// topk with k > K: padded with sentinel entries
	k := mix.K() + 2
	_, out = post(buildReq(OpTopK, uint16(k)))
	rec = out[18:]
	stride := k * 12
	for i, x := range pts {
		wantN := p.Current().TopK(x, k, sc)
		for j := 0; j < k; j++ {
			comp := binary.LittleEndian.Uint32(rec[i*stride+j*12:])
			d2 := math.Float64frombits(binary.LittleEndian.Uint64(rec[i*stride+j*12+4:]))
			if j < len(wantN) {
				if int(comp) != wantN[j].ID || d2 != wantN[j].DistSq {
					t.Fatalf("topk record %d[%d]: comp %d d2 %v, want %+v", i, j, comp, d2, wantN[j])
				}
			} else if comp != ^uint32(0) || !math.IsInf(d2, 1) {
				t.Fatalf("topk record %d[%d]: expected sentinel, got comp %d d2 %v", i, j, comp, d2)
			}
		}
	}

	// malformed: bad magic, wrong dim, GET
	resp, _ = post([]byte("XXXX"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad magic: status %d, want 400", resp.StatusCode)
	}
	bad := buildReq(OpClassify, 0)
	binary.LittleEndian.PutUint16(bad[12:14], 99)
	resp, _ = post(bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong dim: status %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL + "/query/batch")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: status %d, want 405", getResp.StatusCode)
	}
}

// TestHTTPServesShardSet: the handler accepts a ShardSet source and
// serves the reduced mixture.
func TestHTTPServesShardSet(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	shardA, shardB := NewPublisher(Options{}), NewPublisher(Options{})
	if _, err := shardA.Publish(randMixture(rng, 2, 2), 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := shardB.Publish(randMixture(rng, 3, 2), 5, 30); err != nil {
		t.Fatal(err)
	}
	ss := NewShardSet([]*Publisher{shardA, shardB}, Options{})
	if _, err := ss.Reduce(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(ss))
	defer srv.Close()
	var meta struct {
		Version uint64  `json:"version"`
		K       int     `json:"k"`
		Mass    float64 `json:"mass"`
	}
	getJSON(t, srv.URL+"/query/snapshot", &meta)
	if meta.Version != 6 || meta.K != 5 || meta.Mass != 40 {
		t.Fatalf("shard-set snapshot meta = %+v", meta)
	}
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("%s: decode: %v", url, err)
	}
}
