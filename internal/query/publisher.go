package query

import (
	"sync/atomic"
	"time"

	"cludistream/internal/gaussian"
	"cludistream/internal/telemetry"
)

// Publisher is the RCU write side: Publish builds an immutable Snapshot
// and swaps it in with one atomic pointer store; Current is the read side
// — a single atomic load, no locks, no allocation. Old snapshots remain
// fully usable by readers that still hold them.
type Publisher struct {
	cur   atomic.Pointer[Snapshot]
	clock func() float64
	tele  pubTele
}

// Options configures a Publisher. All fields are optional.
type Options struct {
	// Telemetry receives query.* metrics; nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Clock supplies float64 seconds for PublishedAt and staleness
	// measurement. Defaults to wall clock; DST injects the virtual clock.
	Clock func() float64
}

type pubTele struct {
	version   *telemetry.Gauge     // query.snapshot_version
	published *telemetry.Counter   // query.publishes
	refresh   *telemetry.Histogram // query.refresh_seconds: age of the snapshot being replaced
	staleness *telemetry.Histogram // query.staleness_seconds: snapshot age observed at serve time
	classify  *telemetry.Counter   // query.classify
	density   *telemetry.Counter   // query.density
	topk      *telemetry.Counter   // query.topk
}

// stalenessBounds also bounds query.refresh_seconds: publication cadence
// and serve-time staleness live on the same scale.
var stalenessBounds = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// NewPublisher returns a Publisher with no current snapshot; Current
// returns nil until the first Publish.
func NewPublisher(opts Options) *Publisher {
	p := &Publisher{clock: opts.Clock}
	if p.clock == nil {
		start := time.Now()
		p.clock = func() float64 { return time.Since(start).Seconds() }
	}
	if r := opts.Telemetry; r != nil {
		p.tele = pubTele{
			version:   r.Gauge("query.snapshot_version"),
			published: r.Counter("query.publishes"),
			refresh:   r.Histogram("query.refresh_seconds", stalenessBounds...),
			staleness: r.Histogram("query.staleness_seconds", stalenessBounds...),
			classify:  r.Counter("query.classify"),
			density:   r.Counter("query.density"),
			topk:      r.Counter("query.topk"),
		}
	}
	return p
}

// Publish deep-copies mix into a new Snapshot stamped with version and
// mass and makes it the current snapshot. Returns the snapshot so the
// caller can pin it. Publish may run concurrently with any number of
// readers; concurrent Publish calls are safe but last-writer-wins.
func (p *Publisher) Publish(mix *gaussian.Mixture, version uint64, mass float64) (*Snapshot, error) {
	now := p.clock()
	sn, err := newSnapshot(mix, version, mass, now)
	if err != nil {
		return nil, err
	}
	old := p.cur.Swap(sn)
	p.tele.version.Set(float64(version))
	p.tele.published.Inc()
	if old != nil {
		p.tele.refresh.Observe(now - old.publishedAt)
	}
	return sn, nil
}

// Current returns the latest published snapshot, or nil before the first
// Publish. Lock-free and allocation-free: one atomic pointer load.
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Now reads the publisher's clock (float64 seconds).
func (p *Publisher) Now() float64 { return p.clock() }

// ObserveStaleness records the age of a snapshot at serve time into the
// query.staleness_seconds histogram. No-op without telemetry.
func (p *Publisher) ObserveStaleness(sn *Snapshot) {
	if sn != nil {
		p.tele.staleness.Observe(p.clock() - sn.publishedAt)
	}
}

// counterFlushEvery is how many locally-counted ops a Querier batches
// before flushing to the shared telemetry counters. Batching keeps the
// Mqps read path off the shared cache lines; the shared counters lag by
// at most this many ops per goroutine.
const counterFlushEvery = 1024

// Querier is a per-goroutine handle bundling the publisher, a private
// Scratch, and batched op counters. Exactly one goroutine may use a
// Querier at a time.
type Querier struct {
	pub     *Publisher
	scratch *Scratch
	// local op counts since the last flush
	nClassify, nDensity, nTopK int64
}

// NewQuerier returns a Querier for one goroutine's use.
func (p *Publisher) NewQuerier() *Querier {
	return &Querier{pub: p, scratch: NewScratch()}
}

// Snapshot returns the current snapshot (nil before the first publish).
func (q *Querier) Snapshot() *Snapshot { return q.pub.Current() }

// Classify classifies x against the current snapshot. ok is false when
// nothing has been published yet.
func (q *Querier) Classify(x []float64) (Classification, bool) {
	sn := q.pub.Current()
	if sn == nil {
		return Classification{}, false
	}
	res := sn.Classify(x, q.scratch)
	if q.nClassify++; q.nClassify >= counterFlushEvery {
		q.pub.tele.classify.Add(q.nClassify)
		q.nClassify = 0
	}
	return res, true
}

// LogDensity evaluates log p(x) against the current snapshot.
func (q *Querier) LogDensity(x []float64) (float64, bool) {
	sn := q.pub.Current()
	if sn == nil {
		return 0, false
	}
	ld := sn.LogDensity(x, q.scratch)
	if q.nDensity++; q.nDensity >= counterFlushEvery {
		q.pub.tele.density.Add(q.nDensity)
		q.nDensity = 0
	}
	return ld, true
}

// TopK returns the k nearest components to x. The slice aliases the
// Querier's scratch and is valid until the next TopK call.
func (q *Querier) TopK(x []float64, k int) ([]Neighbor, bool) {
	sn := q.pub.Current()
	if sn == nil {
		return nil, false
	}
	nbrs := sn.TopK(x, k, q.scratch)
	if q.nTopK++; q.nTopK >= counterFlushEvery {
		q.pub.tele.topk.Add(q.nTopK)
		q.nTopK = 0
	}
	return nbrs, true
}

// Flush pushes the residual (un-batched) op counts to the shared
// telemetry counters. Call when the goroutine retires the Querier.
func (q *Querier) Flush() {
	if q.nClassify > 0 {
		q.pub.tele.classify.Add(q.nClassify)
	}
	if q.nDensity > 0 {
		q.pub.tele.density.Add(q.nDensity)
	}
	if q.nTopK > 0 {
		q.pub.tele.topk.Add(q.nTopK)
	}
	q.nClassify, q.nDensity, q.nTopK = 0, 0, 0
}
