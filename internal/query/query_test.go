package query

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

// randMixture builds a K-component spherical mixture with distinct means.
func randMixture(rng *rand.Rand, k, dim int) *gaussian.Mixture {
	comps := make([]*gaussian.Component, k)
	ws := make([]float64, k)
	for j := 0; j < k; j++ {
		mean := make(linalg.Vector, dim)
		for d := range mean {
			mean[d] = rng.NormFloat64() * 10
		}
		comps[j] = gaussian.Spherical(mean, 0.5+rng.Float64())
		ws[j] = 0.5 + rng.Float64()
	}
	return gaussian.MustMixture(ws, comps)
}

func randPoint(rng *rand.Rand, dim int) linalg.Vector {
	x := make(linalg.Vector, dim)
	for d := range x {
		x[d] = rng.NormFloat64() * 10
	}
	return x
}

// newCoord returns a coordinator pre-loaded with nSites site models.
func newCoord(t testing.TB, rng *rand.Rand, dim, nSites int) *coordinator.Coordinator {
	t.Helper()
	c, err := coordinator.New(coordinator.Config{Dim: dim, Merge: gaussian.MergeOptions{MomentOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= nSites; s++ {
		u := site.Update{SiteID: s, ModelID: 1, Kind: site.NewModel,
			Mixture: randMixture(rng, 3, dim), Count: 100 + rng.Intn(100)}
		if err := c.HandleUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func publishCoord(t testing.TB, p *Publisher, c *coordinator.Coordinator) *Snapshot {
	t.Helper()
	sn, err := p.Publish(c.GlobalMixture(), c.MixtureVersion(), c.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

func TestCurrentNilBeforePublish(t *testing.T) {
	p := NewPublisher(Options{})
	if p.Current() != nil {
		t.Fatal("Current() non-nil before first Publish")
	}
	q := p.NewQuerier()
	if _, ok := q.Classify([]float64{0}); ok {
		t.Fatal("Classify reported ok with no snapshot")
	}
	if _, ok := q.LogDensity([]float64{0}); ok {
		t.Fatal("LogDensity reported ok with no snapshot")
	}
	if _, ok := q.TopK([]float64{0}, 2); ok {
		t.Fatal("TopK reported ok with no snapshot")
	}
}

func TestPublishRejectsEmptyMixture(t *testing.T) {
	p := NewPublisher(Options{})
	if _, err := p.Publish(nil, 1, 0); err == nil {
		t.Fatal("Publish(nil) did not error")
	}
}

// TestLogDensityMatchesMixture pins bit-identity between the snapshot's
// zero-alloc LogDensity and gaussian.Mixture.LogPDF: same component
// order, same log-sum-exp recurrence, deep-copied components with a
// deterministic Cholesky.
func TestLogDensityMatchesMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mix := randMixture(rng, 8, 3)
	p := NewPublisher(Options{})
	sn, err := p.Publish(mix, 7, 123)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	for i := 0; i < 200; i++ {
		x := randPoint(rng, 3)
		got, want := sn.LogDensity(x, s), mix.LogPDF(x)
		if got != want {
			t.Fatalf("LogDensity(%v) = %v, want %v (bit-identical)", x, got, want)
		}
	}
	if sn.Version() != 7 || sn.Mass() != 123 {
		t.Fatalf("version/mass = %d/%v, want 7/123", sn.Version(), sn.Mass())
	}
}

func TestClassifyMatchesPosterior(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mix := randMixture(rng, 6, 2)
	p := NewPublisher(Options{})
	sn, err := p.Publish(mix, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	for i := 0; i < 200; i++ {
		x := randPoint(rng, 2)
		res := sn.Classify(x, s)
		post := mix.Posterior(x)
		best := 0
		for j := range post {
			if post[j] > post[best] {
				best = j
			}
		}
		if res.Component != best {
			t.Fatalf("Classify(%v) = comp %d, posterior argmax = %d (post %v)", x, res.Component, best, post)
		}
		if math.Abs(math.Exp(res.LogPosterior)-post[best]) > 1e-12 {
			t.Fatalf("LogPosterior exp %v vs posterior %v", math.Exp(res.LogPosterior), post[best])
		}
		if want := mix.LogPDF(x); res.LogDensity != want {
			t.Fatalf("Classification.LogDensity = %v, want %v", res.LogDensity, want)
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mix := randMixture(rng, 16, 4)
	p := NewPublisher(Options{})
	sn, err := p.Publish(mix, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	for i := 0; i < 50; i++ {
		x := randPoint(rng, 4)
		nbrs := sn.TopK(x, 5, s)
		if len(nbrs) != 5 {
			t.Fatalf("TopK returned %d neighbors, want 5", len(nbrs))
		}
		// brute force
		type cand struct {
			id int
			d2 float64
		}
		best := make([]cand, 0, mix.K())
		for j := 0; j < mix.K(); j++ {
			var d2 float64
			for d, v := range mix.Component(j).Mean() {
				diff := x[d] - v
				d2 += diff * diff
			}
			best = append(best, cand{j, d2})
		}
		for a := range best {
			for b := a + 1; b < len(best); b++ {
				if best[b].d2 < best[a].d2 {
					best[a], best[b] = best[b], best[a]
				}
			}
		}
		for a := 0; a < 5; a++ {
			if nbrs[a].DistSq != best[a].d2 {
				t.Fatalf("TopK[%d].DistSq = %v, want %v", a, nbrs[a].DistSq, best[a].d2)
			}
		}
		// k > K clamps
		all := sn.TopK(x, mix.K()+10, s)
		if len(all) != mix.K() {
			t.Fatalf("TopK with k>K returned %d, want %d", len(all), mix.K())
		}
	}
}

// TestSnapshotImmutableUnderIngest is the deep-copy pin: every byte of a
// held snapshot must stay fixed while the coordinator that produced it
// keeps merging, splitting and compacting.
func TestSnapshotImmutableUnderIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 3
	c := newCoord(t, rng, dim, 4)
	p := NewPublisher(Options{})
	sn := publishCoord(t, p, c)

	// Record every byte the snapshot exposes.
	type pin struct {
		weights []float64
		means   [][]float64
		covs    [][]float64
	}
	record := func(sn *Snapshot) pin {
		var pr pin
		for j := 0; j < sn.K(); j++ {
			pr.weights = append(pr.weights, sn.Weight(j))
			c := sn.Component(j)
			pr.means = append(pr.means, append([]float64(nil), c.Mean()...))
			var flat []float64
			cov := c.Cov()
			for i := 0; i < cov.Order(); i++ {
				for k := 0; k <= i; k++ {
					flat = append(flat, cov.At(i, k))
				}
			}
			pr.covs = append(pr.covs, flat)
		}
		return pr
	}
	before := record(sn)

	// Ingest aggressively: new models, weight shifts, deletions, resets.
	for s := 1; s <= 8; s++ {
		_ = c.HandleUpdate(site.Update{SiteID: 100 + s, ModelID: 1, Kind: site.NewModel,
			Mixture: randMixture(rng, 4, dim), Count: 50})
		_ = c.HandleUpdate(site.Update{SiteID: s%4 + 1, ModelID: 1, Kind: site.WeightUpdate, Count: 500})
	}
	c.ResetSite(2)
	publishCoord(t, p, c) // swap in a new snapshot; old one stays pinned

	after := record(sn)
	for j := range before.weights {
		if before.weights[j] != after.weights[j] {
			t.Fatalf("held snapshot weight[%d] changed: %v -> %v", j, before.weights[j], after.weights[j])
		}
		for d := range before.means[j] {
			if before.means[j][d] != after.means[j][d] {
				t.Fatalf("held snapshot mean[%d][%d] changed", j, d)
			}
		}
		for i := range before.covs[j] {
			if before.covs[j][i] != after.covs[j][i] {
				t.Fatalf("held snapshot cov[%d][%d] changed", j, i)
			}
		}
	}
	if cur := p.Current(); cur == sn {
		t.Fatal("Current() still returns the old snapshot after republish")
	}
}

// TestQueryRaceHammer runs concurrent readers against a writer that
// republishes continuously while the coordinator ingests — the -race
// gate for the RCU claim. Readers verify self-consistency of whatever
// snapshot they observe (posterior sums to 1, density finite).
func TestQueryRaceHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim := 2
	c := newCoord(t, rng, dim, 3)
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{Telemetry: reg})
	publishCoord(t, p, c)

	stop := make(chan struct{})
	var writerWG, wg sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer: ingest + republish
		defer writerWG.Done()
		wrng := rand.New(rand.NewSource(6))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.HandleUpdate(site.Update{SiteID: 50 + i%10, ModelID: 1 + i/10, Kind: site.NewModel,
				Mixture: randMixture(wrng, 3, dim), Count: 60})
			publishCoord(t, p, c)
		}
	}()

	readers := runtime.GOMAXPROCS(0)
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			q := p.NewQuerier()
			defer q.Flush()
			rrng := rand.New(rand.NewSource(seed))
			var lastVer uint64
			for i := 0; i < 3000; i++ {
				x := randPoint(rrng, dim)
				res, ok := q.Classify(x)
				if !ok {
					errCh <- errNoSnapshot
					return
				}
				if math.IsNaN(res.LogDensity) || res.LogPosterior > 1e-9 {
					errCh <- errBadResult
					return
				}
				if ld, _ := q.LogDensity(x); math.IsNaN(ld) {
					errCh <- errBadResult
					return
				}
				if nbrs, _ := q.TopK(x, 2); len(nbrs) == 0 {
					errCh <- errBadResult
					return
				}
				if v := q.Snapshot().Version(); v < lastVer {
					errCh <- errVersionWentBack
					return
				} else {
					lastVer = v
				}
			}
		}(int64(100 + r))
	}
	wg.Wait() // readers done; now stop the writer
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// sentinel errors for the hammer's error channel
var (
	errNoSnapshot      = errString("reader saw no snapshot")
	errBadResult       = errString("reader saw NaN density or positive log-posterior")
	errVersionWentBack = errString("snapshot version went backwards")
)

type errString string

func (e errString) Error() string { return string(e) }

// TestQuerierCountersFlush pins the batched-counter contract: after
// Flush, the shared telemetry counters hold the exact op counts.
func TestQuerierCountersFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{Telemetry: reg})
	if _, err := p.Publish(randMixture(rng, 4, 2), 1, 1); err != nil {
		t.Fatal(err)
	}
	q := p.NewQuerier()
	x := []float64{0, 0}
	const n = counterFlushEvery*2 + 37 // crosses the auto-flush boundary twice
	for i := 0; i < n; i++ {
		q.Classify(x)
	}
	for i := 0; i < 5; i++ {
		q.LogDensity(x)
		q.TopK(x, 2)
	}
	q.Flush()
	snap := reg.Snapshot()
	if got := snap.Counters["query.classify"]; got != n {
		t.Fatalf("query.classify = %d, want %d", got, n)
	}
	if got := snap.Counters["query.density"]; got != 5 {
		t.Fatalf("query.density = %d, want 5", got)
	}
	if got := snap.Counters["query.topk"]; got != 5 {
		t.Fatalf("query.topk = %d, want 5", got)
	}
	if got := snap.Gauges["query.snapshot_version"]; got != 1 {
		t.Fatalf("query.snapshot_version = %v, want 1", got)
	}
	if got := snap.Counters["query.publishes"]; got != 1 {
		t.Fatalf("query.publishes = %d, want 1", got)
	}
}

// TestQueryReadPathZeroAlloc is the alloc gate `make check` runs: every
// read op must be allocation-free once the scratch has warmed up.
func TestQueryReadPathZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewPublisher(Options{Telemetry: telemetry.NewRegistry()})
	if _, err := p.Publish(randMixture(rng, 8, 4), 1, 1); err != nil {
		t.Fatal(err)
	}
	q := p.NewQuerier()
	x := randPoint(rng, 4)
	q.Classify(x) // warm the scratch
	q.TopK(x, 4)
	if allocs := testing.AllocsPerRun(500, func() { q.Classify(x) }); allocs != 0 {
		t.Fatalf("Classify allocated %.1f times per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { q.LogDensity(x) }); allocs != 0 {
		t.Fatalf("LogDensity allocated %.1f times per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { q.TopK(x, 4) }); allocs != 0 {
		t.Fatalf("TopK allocated %.1f times per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { _ = p.Current() }); allocs != 0 {
		t.Fatalf("Current allocated %.1f times per op, want 0", allocs)
	}
}
