package query

import (
	"fmt"

	"cludistream/internal/gaussian"
)

// ShardSet is the thin reduce layer over N coordinator shards (the
// paper's Section 7 multi-layer sketch): each shard owns a subset of
// sites and publishes its own mixture snapshots; Reduce merges the
// current per-shard snapshots into one served mixture, weighting each
// shard's components by the shard's record mass. The merged snapshot is
// published through the set's own Publisher, so readers use the same
// lock-free Current/Querier path whether the tier is sharded or not.
type ShardSet struct {
	shards []*Publisher
	merged *Publisher
}

// NewShardSet builds a reduce layer over the given shard publishers.
// opts configures the merged-output publisher (telemetry, clock).
func NewShardSet(shards []*Publisher, opts Options) *ShardSet {
	return &ShardSet{shards: shards, merged: NewPublisher(opts)}
}

// Shards returns the underlying shard publishers (for feeding).
func (ss *ShardSet) Shards() []*Publisher { return ss.shards }

// Merged returns the publisher serving the reduced mixture.
func (ss *ShardSet) Merged() *Publisher { return ss.merged }

// Current returns the latest reduced snapshot, so a ShardSet can stand in
// anywhere a Publisher-backed source is expected (e.g. the HTTP handler).
func (ss *ShardSet) Current() *Snapshot { return ss.merged.Current() }

// NewQuerier returns a per-goroutine Querier over the reduced mixture.
func (ss *ShardSet) NewQuerier() *Querier { return ss.merged.NewQuerier() }

// Reduce merges the shards' current snapshots and publishes the result.
// Shards that have not published yet are skipped; at least one shard must
// have a snapshot. Each shard contributes its components with absolute
// weight w_j·mass_s, so the merged mixture is the mass-weighted average
// of the shard densities: p(x) = Σ_s (M_s/ΣM) p_s(x). The merged version
// is the sum of shard versions — monotone because every shard's version
// is — and the snapshot's mass is the total across shards.
func (ss *ShardSet) Reduce() (*Snapshot, error) {
	var (
		weights []float64
		comps   []*gaussian.Component
		version uint64
		mass    float64
	)
	for _, sh := range ss.shards {
		sn := sh.Current()
		if sn == nil {
			continue
		}
		version += sn.Version()
		mass += sn.Mass()
		for j := 0; j < sn.K(); j++ {
			// Shard snapshot components are immutable and already
			// decoupled from their coordinator, so sharing them here is
			// safe; Publish deep-copies once more into the merged
			// snapshot.
			weights = append(weights, sn.Weight(j)*sn.Mass())
			comps = append(comps, sn.Component(j))
		}
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("query: reduce: no shard has published a snapshot")
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil, fmt.Errorf("query: reduce: %w", err)
	}
	return ss.merged.Publish(mix, version, mass)
}
