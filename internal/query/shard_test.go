package query

import (
	"math"
	"math/rand"
	"testing"
)

// TestReduceMergesByMass pins the reduce semantics: the merged density is
// the mass-weighted average of shard densities, the merged version is the
// sum of shard versions, and the merged mass is the total.
func TestReduceMergesByMass(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	shardA, shardB := NewPublisher(Options{}), NewPublisher(Options{})
	mixA, mixB := randMixture(rng, 3, 2), randMixture(rng, 5, 2)
	if _, err := shardA.Publish(mixA, 4, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := shardB.Publish(mixB, 9, 100); err != nil {
		t.Fatal(err)
	}
	ss := NewShardSet([]*Publisher{shardA, shardB}, Options{})
	sn, err := ss.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Version() != 13 {
		t.Fatalf("merged version = %d, want 4+9=13", sn.Version())
	}
	if sn.Mass() != 400 {
		t.Fatalf("merged mass = %v, want 400", sn.Mass())
	}
	if sn.K() != mixA.K()+mixB.K() {
		t.Fatalf("merged K = %d, want %d", sn.K(), mixA.K()+mixB.K())
	}
	if ss.Current() != sn {
		t.Fatal("ShardSet.Current() != the snapshot Reduce returned")
	}
	s := NewScratch()
	for i := 0; i < 100; i++ {
		x := randPoint(rng, 2)
		got := math.Exp(sn.LogDensity(x, s))
		want := (300*mixA.PDF(x) + 100*mixB.PDF(x)) / 400
		if math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("merged density(%v) = %g, want mass-weighted %g", x, got, want)
		}
	}
}

// TestReduceSkipsUnpublishedShards: shards that have not published yet do
// not block the reduce; a fully-unpublished set errors.
func TestReduceSkipsUnpublishedShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shardA, shardB := NewPublisher(Options{}), NewPublisher(Options{})
	ss := NewShardSet([]*Publisher{shardA, shardB}, Options{})
	if _, err := ss.Reduce(); err == nil {
		t.Fatal("Reduce with no published shards did not error")
	}
	mixA := randMixture(rng, 3, 2)
	if _, err := shardA.Publish(mixA, 2, 50); err != nil {
		t.Fatal(err)
	}
	sn, err := ss.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	if sn.K() != mixA.K() || sn.Version() != 2 || sn.Mass() != 50 {
		t.Fatalf("single-shard reduce: K=%d version=%d mass=%v", sn.K(), sn.Version(), sn.Mass())
	}
	// One-shard reduce must serve the same densities as the shard.
	s := NewScratch()
	for i := 0; i < 50; i++ {
		x := randPoint(rng, 2)
		got, want := sn.LogDensity(x, s), shardA.Current().LogDensity(x, s)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("one-shard reduce density %v, shard density %v", got, want)
		}
	}
}

// TestReduceVersionMonotone: repeated reduces over advancing shards never
// move the merged version backwards.
func TestReduceVersionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shards := []*Publisher{NewPublisher(Options{}), NewPublisher(Options{}), NewPublisher(Options{})}
	ss := NewShardSet(shards, Options{})
	var last uint64
	for round := 1; round <= 10; round++ {
		for i, sh := range shards {
			if rng.Intn(2) == 0 || round == 1 {
				if _, err := sh.Publish(randMixture(rng, 2+i, 2), uint64(round*(i+1)), float64(10*round)); err != nil {
					t.Fatal(err)
				}
			}
		}
		sn, err := ss.Reduce()
		if err != nil {
			t.Fatal(err)
		}
		if sn.Version() < last {
			t.Fatalf("round %d: merged version %d < previous %d", round, sn.Version(), last)
		}
		last = sn.Version()
	}
}
