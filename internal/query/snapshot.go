// Package query is the lock-free serving tier over the coordinator's
// global mixture. The coordinator (or a shard-reduce layer) publishes
// immutable, versioned Snapshots through a Publisher; readers load the
// current snapshot with a single atomic pointer read and score against it
// without ever touching coordinator state — RCU semantics: writers swap,
// readers never block, old snapshots stay valid for as long as anyone
// holds them.
//
// A Snapshot pins a deep copy of the mixture (fresh mean/cov backing
// arrays, recomputed Cholesky — bit-identical because the decomposition is
// deterministic), precomputed log-weights, and a kd-index over component
// means. The three read ops — Classify (argmax posterior), LogDensity
// (log-likelihood) and TopK (nearest components) — are allocation-free
// given a caller-owned Scratch.
package query

import (
	"fmt"
	"math"

	"cludistream/internal/gaussian"
	"cludistream/internal/kdtree"
	"cludistream/internal/linalg"
)

// Snapshot is one immutable published version of the global mixture.
// Every field is frozen at publish time; the read ops are safe for any
// number of concurrent goroutines without synchronization.
type Snapshot struct {
	version     uint64
	mass        float64
	publishedAt float64 // publisher clock seconds

	weights []float64 // verbatim from the source mixture (already normalized)
	logW    []float64
	comps   []*gaussian.Component // deep copies — no sharing with the coordinator
	kd      *kdtree.Tree          // component means, IDs = component indices
	dim     int
}

// newSnapshot deep-copies mix so that no byte of the snapshot is shared
// with coordinator state. Weights are taken verbatim (no renormalization:
// the source mixture already normalized once, and dividing again by a
// sum≈1 could perturb last-ulp bits, breaking the DST prefix-equality
// invariant).
func newSnapshot(mix *gaussian.Mixture, version uint64, mass, now float64) (*Snapshot, error) {
	if mix == nil || mix.K() == 0 {
		return nil, fmt.Errorf("query: cannot snapshot empty mixture")
	}
	k, dim := mix.K(), mix.Dim()
	sn := &Snapshot{
		version:     version,
		mass:        mass,
		publishedAt: now,
		weights:     mix.Weights(), // Weights() returns a fresh copy
		logW:        make([]float64, k),
		comps:       make([]*gaussian.Component, k),
		kd:          kdtree.New(dim),
		dim:         dim,
	}
	for j := 0; j < k; j++ {
		src := mix.Component(j)
		// NewComponent clones mean and cov into fresh arrays and
		// recomputes the (deterministic) Cholesky, so the copy is deep
		// and bit-identical.
		c, err := gaussian.NewComponent(src.Mean(), src.Cov(), 0)
		if err != nil {
			return nil, fmt.Errorf("query: snapshot component %d: %w", j, err)
		}
		sn.comps[j] = c
		sn.logW[j] = math.Log(sn.weights[j])
		sn.kd.Insert(j, c.Mean())
	}
	return sn, nil
}

// Version is the coordinator mixture version this snapshot was built from
// (sum of shard versions for a reduced snapshot).
func (sn *Snapshot) Version() uint64 { return sn.version }

// Mass is the total record weight behind the mixture (sum of shard masses
// for a reduced snapshot).
func (sn *Snapshot) Mass() float64 { return sn.mass }

// PublishedAt is the publisher clock reading (float64 seconds) at publish.
func (sn *Snapshot) PublishedAt() float64 { return sn.publishedAt }

// K returns the number of components.
func (sn *Snapshot) K() int { return len(sn.comps) }

// Dim returns the data dimensionality.
func (sn *Snapshot) Dim() int { return sn.dim }

// Weight returns component j's mixing weight.
func (sn *Snapshot) Weight(j int) float64 { return sn.weights[j] }

// Component returns component j (immutable, owned by the snapshot).
func (sn *Snapshot) Component(j int) *gaussian.Component { return sn.comps[j] }

// Mixture rebuilds a gaussian.Mixture view of the snapshot. It allocates;
// use the read ops for serving. Intended for tests and invariant checks.
func (sn *Snapshot) Mixture() (*gaussian.Mixture, error) {
	return gaussian.NewMixture(sn.weights, sn.comps)
}

// Scratch holds the per-goroutine workspace the read ops need. One
// Scratch must not be used by two goroutines at once; acquire one per
// worker (or via the HTTP handler's pool) and reuse it across calls.
type Scratch struct {
	diff, half linalg.Vector
	nbrs       []kdtree.Neighbor
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// reused afterwards, so steady-state queries do not allocate.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensure(dim int) {
	if len(s.diff) != dim {
		s.diff = make(linalg.Vector, dim)
		s.half = make(linalg.Vector, dim)
	}
}

// Classification is the result of Classify: the argmax-posterior
// component, its log posterior log Pr(j|x), and the total log density
// log p(x). Returned by value — no heap allocation.
type Classification struct {
	Component    int
	LogPosterior float64
	LogDensity   float64
}

// Classify assigns x to the highest-posterior component. Zero
// allocations; bit-stable for a given snapshot.
func (sn *Snapshot) Classify(x linalg.Vector, s *Scratch) Classification {
	s.ensure(sn.dim)
	best, bestLP := 0, math.Inf(-1)
	total := math.Inf(-1)
	for j, c := range sn.comps {
		lp := sn.logW[j] + c.LogProbScratch(x, s.diff, s.half)
		if lp > bestLP {
			best, bestLP = j, lp
		}
		total = logAdd(total, lp)
	}
	return Classification{Component: best, LogPosterior: bestLP - total, LogDensity: total}
}

// LogDensity returns log p(x) under the snapshot mixture, evaluated with
// the same stable log-sum-exp recurrence as gaussian.Mixture.LogPDF (same
// component order → bit-identical result). Zero allocations.
func (sn *Snapshot) LogDensity(x linalg.Vector, s *Scratch) float64 {
	s.ensure(sn.dim)
	total := math.Inf(-1)
	for j, c := range sn.comps {
		total = logAdd(total, sn.logW[j]+c.LogProbScratch(x, s.diff, s.half))
	}
	return total
}

// Neighbor is a top-k result: ID is the component index, DistSq the
// squared Euclidean distance from the query point to the component mean.
type Neighbor = kdtree.Neighbor

// TopK returns the k components whose means are nearest to x in Euclidean
// distance, closest first (Neighbor.ID is the component index). k larger
// than K() is clamped. The returned slice aliases the Scratch and is valid
// until the next TopK call on the same Scratch. Zero allocations once the
// Scratch buffer has grown to k.
func (sn *Snapshot) TopK(x linalg.Vector, k int, s *Scratch) []kdtree.Neighbor {
	if cap(s.nbrs) < k {
		s.nbrs = make([]kdtree.Neighbor, 0, k)
	}
	s.nbrs = sn.kd.NearestKInto(x, k, s.nbrs[:0])
	return s.nbrs
}

// logAdd returns log(exp(a)+exp(b)) stably; mirrors gaussian.logAdd so
// LogDensity reproduces Mixture.LogPDF bit-for-bit.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
