package sem

import (
	"fmt"
	"math/rand"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// SamplingEM is the "sampling based EM" baseline of Figure 6: it maintains
// a uniform reservoir sample (Vitter's Algorithm R) of the stream and fits
// EM on the sample when a model is requested. It is cheap but, as the paper
// observes, "the sampling may lose a lot of valuable clustering
// information" — rare or short-lived distributions vanish from the
// reservoir.
type SamplingEM struct {
	cfg       em.Config
	capacity  int
	rng       *rand.Rand
	reservoir []linalg.Vector
	seen      int
	mix       *gaussian.Mixture
	dirty     bool
}

// NewSamplingEM builds a reservoir of the given capacity. emCfg.K must be
// set; the seed makes the reservoir (and the fits) deterministic.
func NewSamplingEM(capacity int, emCfg em.Config, seed int64) (*SamplingEM, error) {
	if capacity < emCfg.K {
		return nil, fmt.Errorf("sem: reservoir capacity %d < K %d", capacity, emCfg.K)
	}
	return &SamplingEM{
		cfg:      emCfg,
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Observe consumes one record (Algorithm R).
func (s *SamplingEM) Observe(x linalg.Vector) {
	s.seen++
	s.dirty = true
	if len(s.reservoir) < s.capacity {
		s.reservoir = append(s.reservoir, x.Clone())
		return
	}
	if j := s.rng.Intn(s.seen); j < s.capacity {
		s.reservoir[j] = x.Clone()
	}
}

// ObserveAll consumes a batch.
func (s *SamplingEM) ObserveAll(xs []linalg.Vector) {
	for _, x := range xs {
		s.Observe(x)
	}
}

// Model fits (or returns the cached) EM model over the reservoir. Returns
// nil when the reservoir holds fewer than K records.
func (s *SamplingEM) Model() *gaussian.Mixture {
	if !s.dirty && s.mix != nil {
		return s.mix
	}
	if len(s.reservoir) < s.cfg.K {
		return nil
	}
	res, err := em.Fit(s.reservoir, s.cfg)
	if err != nil {
		return nil
	}
	s.mix = res.Mixture
	s.dirty = false
	return s.mix
}

// Seen returns the number of records observed.
func (s *SamplingEM) Seen() int { return s.seen }

// SampleSize returns the current reservoir fill.
func (s *SamplingEM) SampleSize() int { return len(s.reservoir) }
