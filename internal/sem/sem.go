// Package sem implements the two baselines CluDistream is evaluated
// against in Section 6 of the paper:
//
//   - SEM, the scalable EM algorithm of Bradley, Reina & Fayyad
//     ("Clustering very large databases using EM mixture models", ICPR
//     2000, reference [6]): a one-pass EM that keeps a bounded buffer of
//     raw records and compresses records that are confidently explained by
//     a component into that component's sufficient statistics, so the whole
//     stream is summarized by one evolving mixture model.
//
//   - A reservoir-sampling EM ("sampling based EM" in Figure 6): keep a
//     uniform sample of the stream and refit EM on it when a model is
//     requested.
//
// Both see exactly the same records the CluDistream site sees, so every
// comparison in the experiments is apples-to-apples.
package sem

import (
	"fmt"
	"math"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// Config parameterizes a SEM instance.
type Config struct {
	// K is the number of mixture components.
	K int
	// Dim is the data dimensionality.
	Dim int
	// BufferSize bounds the raw-record buffer; when it fills, SEM refits
	// and compresses (default 1000).
	BufferSize int
	// CompressRadius is the squared Mahalanobis radius inside which a
	// record is considered confidently owned by its best component and is
	// folded into that component's sufficient statistics (default: d, the
	// expectation of a chi-square with d degrees of freedom).
	CompressRadius float64
	// EM configures the inner EM runs.
	EM em.Config
	// Seed drives the deterministic inner EM initialization.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BufferSize <= 0 {
		c.BufferSize = 1000
	}
	if c.CompressRadius <= 0 {
		c.CompressRadius = float64(c.Dim)
	}
	c.EM.K = c.K
	if c.EM.Seed == 0 {
		c.EM.Seed = c.Seed
	}
	return c
}

// SEM is the scalable-EM state: an evolving mixture, per-component discard
// sets (compressed sufficient statistics), and a bounded retained buffer.
type SEM struct {
	cfg     Config
	mix     *gaussian.Mixture
	discard []*em.SuffStats // one per component, compressed mass
	buffer  []linalg.Vector
	seen    int // records observed
	refits  int // EM runs performed (cost accounting)
	// scratch backs the batched compression sweep across refits.
	scratch *gaussian.BatchScratch
}

// New returns an empty SEM instance.
func New(cfg Config) (*SEM, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("sem: K = %d", cfg.K)
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("sem: Dim = %d", cfg.Dim)
	}
	s := &SEM{cfg: cfg, scratch: gaussian.NewBatchScratch()}
	s.discard = make([]*em.SuffStats, cfg.K)
	for j := range s.discard {
		s.discard[j] = em.NewSuffStats(cfg.Dim)
	}
	return s, nil
}

// Observe consumes one record. When the buffer fills, the model is refit
// over buffer + discard sets and the confidently-explained buffer records
// are compressed away.
func (s *SEM) Observe(x linalg.Vector) error {
	if len(x) != s.cfg.Dim {
		return fmt.Errorf("sem: record dim %d, want %d", len(x), s.cfg.Dim)
	}
	s.seen++
	s.buffer = append(s.buffer, x.Clone())
	if len(s.buffer) >= s.cfg.BufferSize {
		return s.refit()
	}
	return nil
}

// ObserveAll consumes a batch.
func (s *SEM) ObserveAll(xs []linalg.Vector) error {
	for _, x := range xs {
		if err := s.Observe(x); err != nil {
			return err
		}
	}
	return nil
}

// refit runs extended EM over the buffered records plus the compressed
// discard sets, then performs primary compression.
func (s *SEM) refit() error {
	blocks := make([]*em.SuffStats, 0, len(s.buffer)+s.cfg.K)
	for _, x := range s.buffer {
		b := em.NewSuffStats(s.cfg.Dim)
		b.Add(x, 1)
		blocks = append(blocks, b)
	}
	for _, d := range s.discard {
		if d.W > 0 {
			blocks = append(blocks, d.Clone())
		}
	}
	cfg := s.cfg.EM
	cfg.Seed = s.cfg.Seed + int64(s.refits) // vary init across refits, deterministically
	// Warm-start from the current model: SEM is a *continuing* EM over the
	// compressed stream, not a sequence of cold fits.
	cfg.InitModel = s.mix
	res, err := em.FitStats(blocks, cfg)
	if err != nil {
		// Not enough mass yet (e.g. tiny first buffer): keep buffering.
		if err == em.ErrNotEnoughData {
			return nil
		}
		return err
	}
	s.refits++
	s.mix = res.Mixture

	// Primary compression: fold confidently-owned buffer records into the
	// owning component's discard set; retain the rest (ambiguous region).
	// The nearest-component classification runs batched over the whole
	// buffer — one blocked Mahalanobis sweep per component instead of a
	// factor walk per record per component.
	owner := make([]int, len(s.buffer))
	maha := make([]float64, len(s.buffer))
	s.mix.NearestComponents(s.buffer, owner, maha, s.scratch)
	retained := s.buffer[:0]
	var kept int
	for i, x := range s.buffer {
		if maha[i] <= s.cfg.CompressRadius {
			s.discard[owner[i]].Add(x, 1)
		} else {
			owner[kept] = owner[i]
			retained = append(retained, x)
			kept++
		}
	}
	// If compression freed nothing (pathological spread-out buffer), drop
	// the oldest half into their nearest components anyway — SEM must stay
	// one-pass bounded-memory.
	if len(retained) >= s.cfg.BufferSize {
		forced := retained[:len(retained)/2]
		forcedOwner := owner[:len(retained)/2]
		retained = retained[len(retained)/2:]
		for i, x := range forced {
			s.discard[forcedOwner[i]].Add(x, 1)
		}
	}
	s.buffer = append([]linalg.Vector(nil), retained...)
	return nil
}

// nearestComponent returns the component with the smallest squared
// Mahalanobis distance to x, and that distance.
func (s *SEM) nearestComponent(x linalg.Vector) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for j := 0; j < s.mix.K(); j++ {
		if d := s.mix.Component(j).MahalanobisSq(x); d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

// Model returns the current mixture, fitting one on demand if the buffer
// has data but no refit has happened yet. Returns nil if SEM has not seen
// enough records to build a model at all.
func (s *SEM) Model() *gaussian.Mixture {
	if s.mix == nil && len(s.buffer) >= s.cfg.K {
		_ = s.fitBufferOnly()
	}
	return s.mix
}

func (s *SEM) fitBufferOnly() error {
	res, err := em.Fit(s.buffer, func() em.Config { c := s.cfg.EM; return c }())
	if err != nil {
		return err
	}
	s.mix = res.Mixture
	return nil
}

// Seen returns the number of records observed.
func (s *SEM) Seen() int { return s.seen }

// Refits returns how many inner EM runs have occurred (the dominant CPU
// cost — SEM reclusters on every full buffer, which is exactly why Figure 8
// shows it processing under 400 updates/second).
func (s *SEM) Refits() int { return s.refits }

// BufferedRecords returns the current retained-set size.
func (s *SEM) BufferedRecords() int { return len(s.buffer) }

// CompressedWeight returns the total mass held in discard sets.
func (s *SEM) CompressedWeight() float64 {
	var w float64
	for _, d := range s.discard {
		w += d.W
	}
	return w
}

// MemoryBytes estimates resident bytes: buffer records + K discard blocks.
// Used by the Figure 10 comparison.
func (s *SEM) MemoryBytes() int {
	d := s.cfg.Dim
	per := 8 * d // one record
	block := 8 * (1 + d + d*(d+1)/2)
	return len(s.buffer)*per + len(s.discard)*block
}
