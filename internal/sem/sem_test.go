package sem

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

func bimodalStream(rng *rand.Rand, n int) []linalg.Vector {
	mix := gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{-5}, 1),
			gaussian.Spherical(linalg.Vector{5}, 1),
		})
	return mix.SampleN(rng, n)
}

func TestSEMRecoversStationaryMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	s, err := New(Config{K: 2, Dim: 1, BufferSize: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(bimodalStream(rng, 5000)); err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	if m == nil {
		t.Fatal("no model after 5000 records")
	}
	means := []float64{m.Component(0).Mean()[0], m.Component(1).Mean()[0]}
	sort.Float64s(means)
	if math.Abs(means[0]+5) > 0.5 || math.Abs(means[1]-5) > 0.5 {
		t.Fatalf("means = %v, want ±5", means)
	}
}

func TestSEMBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	s, err := New(Config{K: 2, Dim: 1, BufferSize: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(bimodalStream(rng, 10000)); err != nil {
		t.Fatal(err)
	}
	if s.BufferedRecords() >= 2*300 {
		t.Fatalf("buffer grew unbounded: %d", s.BufferedRecords())
	}
	// Compressed + buffered must account for all mass.
	total := s.CompressedWeight() + float64(s.BufferedRecords())
	if math.Abs(total-10000) > 1e-6 {
		t.Fatalf("mass accounting: compressed %v + buffered %d != 10000", s.CompressedWeight(), s.BufferedRecords())
	}
}

func TestSEMCompressionActuallyCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	s, _ := New(Config{K: 2, Dim: 1, BufferSize: 400, Seed: 1})
	if err := s.ObserveAll(bimodalStream(rng, 4000)); err != nil {
		t.Fatal(err)
	}
	if s.CompressedWeight() < 2000 {
		t.Fatalf("compressed only %v of 4000 records", s.CompressedWeight())
	}
	if s.Refits() == 0 {
		t.Fatal("no refits happened")
	}
}

func TestSEMSeenCount(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	s, _ := New(Config{K: 2, Dim: 1, BufferSize: 100, Seed: 1})
	_ = s.ObserveAll(bimodalStream(rng, 777))
	if s.Seen() != 777 {
		t.Fatalf("Seen = %d", s.Seen())
	}
}

func TestSEMDimValidation(t *testing.T) {
	s, _ := New(Config{K: 1, Dim: 2, Seed: 1})
	if err := s.Observe(linalg.Vector{1}); err == nil {
		t.Fatal("wrong-dim record accepted")
	}
	if _, err := New(Config{K: 0, Dim: 1}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(Config{K: 1, Dim: 0}); err == nil {
		t.Fatal("Dim=0 accepted")
	}
}

func TestSEMModelOnPartialBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	s, _ := New(Config{K: 2, Dim: 1, BufferSize: 10000, Seed: 1})
	_ = s.ObserveAll(bimodalStream(rng, 200))
	// Buffer not full yet: Model must still fit on demand.
	if s.Model() == nil {
		t.Fatal("no on-demand model from partial buffer")
	}
}

func TestSEMMemoryBytesGrowsSlowly(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	s, _ := New(Config{K: 5, Dim: 4, BufferSize: 500, Seed: 1})
	mix := gaussian.MustMixture(
		[]float64{1, 1},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{-3, 0, 0, 0}, 1),
			gaussian.Spherical(linalg.Vector{3, 0, 0, 0}, 1),
		})
	_ = s.ObserveAll(mix.SampleN(rng, 2000))
	m1 := s.MemoryBytes()
	_ = s.ObserveAll(mix.SampleN(rng, 8000))
	m2 := s.MemoryBytes()
	// 5x the data should cost far less than 5x the memory.
	if m2 > 3*m1 {
		t.Fatalf("memory scaled with stream: %d -> %d", m1, m2)
	}
}

func TestSEMSingleRegimeDriftHurtsQuality(t *testing.T) {
	// The core weakness Figure 5 exposes: when the distribution changes,
	// SEM fits one model across regimes. Its likelihood on the most recent
	// regime must be worse than a fresh EM fit on that regime alone.
	rng := rand.New(rand.NewSource(97))
	regime1 := gaussian.Spherical(linalg.Vector{-8}, 1)
	regime2 := gaussian.Spherical(linalg.Vector{8}, 1)
	s, _ := New(Config{K: 1, Dim: 1, BufferSize: 400, Seed: 1})
	var recent []linalg.Vector
	for i := 0; i < 3000; i++ {
		_ = s.Observe(regime1.Sample(rng))
	}
	for i := 0; i < 3000; i++ {
		x := regime2.Sample(rng)
		_ = s.Observe(x)
		if i >= 2000 {
			recent = append(recent, x)
		}
	}
	semLL := s.Model().AvgLogLikelihood(recent)
	fresh, err := em.Fit(recent, em.Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	freshLL := fresh.Mixture.AvgLogLikelihood(recent)
	if semLL >= freshLL {
		t.Fatalf("SEM LL %v should trail fresh fit %v after regime change", semLL, freshLL)
	}
}

func TestSamplingEMReservoirUniform(t *testing.T) {
	// Feed 0..9999; reservoir of 1000 should hold a roughly uniform sample.
	s, err := NewSamplingEM(1000, em.Config{K: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Observe(linalg.Vector{float64(i)})
	}
	if s.SampleSize() != 1000 {
		t.Fatalf("reservoir size = %d", s.SampleSize())
	}
	var mean float64
	for _, x := range s.reservoir {
		mean += x[0]
	}
	mean /= 1000
	if math.Abs(mean-5000) > 300 {
		t.Fatalf("reservoir mean = %v, want ≈5000", mean)
	}
}

func TestSamplingEMModelCaching(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	s, _ := NewSamplingEM(500, em.Config{K: 2, Seed: 1}, 2)
	s.ObserveAll(bimodalStream(rng, 2000))
	m1 := s.Model()
	m2 := s.Model()
	if m1 != m2 {
		t.Fatal("Model not cached between observations")
	}
	s.Observe(linalg.Vector{0})
	if s.Model() == m1 {
		t.Fatal("Model cache not invalidated by Observe")
	}
}

func TestSamplingEMTooSmallCapacity(t *testing.T) {
	if _, err := NewSamplingEM(1, em.Config{K: 5}, 1); err == nil {
		t.Fatal("capacity < K accepted")
	}
}

func TestSamplingEMLosesRareRegime(t *testing.T) {
	// A short-lived regime early in the stream gets crowded out of the
	// reservoir — the information-loss failure mode of Figure 6.
	rng := rand.New(rand.NewSource(99))
	rare := gaussian.Spherical(linalg.Vector{100}, 1)
	common := gaussian.Spherical(linalg.Vector{0}, 1)
	s, _ := NewSamplingEM(200, em.Config{K: 2, Seed: 1}, 3)
	for i := 0; i < 300; i++ {
		s.Observe(rare.Sample(rng))
	}
	for i := 0; i < 60000; i++ {
		s.Observe(common.Sample(rng))
	}
	var rareInReservoir int
	for _, x := range s.reservoir {
		if x[0] > 50 {
			rareInReservoir++
		}
	}
	if rareInReservoir > 10 {
		t.Fatalf("rare regime still dominates reservoir: %d/200", rareInReservoir)
	}
}
