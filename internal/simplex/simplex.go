// Package simplex implements the Nelder–Mead downhill simplex method for
// unconstrained multidimensional minimization (Nelder & Mead, The Computer
// Journal 7(4), 1965 — reference [19] of the paper).
//
// CluDistream's coordinator uses it to fit the parameters of a merged
// Gaussian component by minimizing the L1 accuracy-loss l(x) between the
// merged density and the sum of its two parents (Section 5.2.1). The paper
// picked downhill simplex precisely because l(x) has no usable derivatives;
// this implementation follows the standard reflection / expansion /
// contraction / shrink scheme with the conventional coefficients.
package simplex

import (
	"errors"
	"math"
	"sort"
)

// Options configures a Minimize run. The zero value selects sensible
// defaults (standard Nelder–Mead coefficients, 200·dim iterations).
type Options struct {
	// MaxIter caps the number of iterations (default 200·dim).
	MaxIter int
	// TolF stops when the spread of function values across the simplex
	// falls below TolF (default 1e-10).
	TolF float64
	// TolX stops when the simplex diameter falls below TolX (default 1e-10).
	TolX float64
	// Step is the initial perturbation applied per coordinate to build the
	// starting simplex (default 0.1·|x_i| or 0.1 when x_i == 0).
	Step float64

	// Reflection, Expansion, Contraction, Shrink override the standard
	// coefficients (1, 2, 0.5, 0.5) when non-zero.
	Reflection  float64
	Expansion   float64
	Contraction float64
	Shrink      float64
}

// Result reports the outcome of a minimization.
type Result struct {
	X          []float64 // best point found
	F          float64   // objective at X
	Iterations int       // iterations performed
	Evals      int       // objective evaluations
	Converged  bool      // true if a tolerance was met before MaxIter
}

// ErrBadStart is returned when the initial point has non-finite objective.
var ErrBadStart = errors.New("simplex: objective not finite at starting point")

type vertex struct {
	x []float64
	f float64
}

// Minimize runs Nelder–Mead on f starting from x0 and returns the best
// point found. f must be defined (finite) at x0; elsewhere it may return
// +Inf to encode constraints (the simplex simply moves away).
func Minimize(f func([]float64) float64, x0 []float64, opt Options) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{X: nil, F: f(nil), Evals: 1, Converged: true}, nil
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200 * n
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-10
	}
	if opt.TolX <= 0 {
		opt.TolX = 1e-10
	}
	if opt.Step <= 0 {
		opt.Step = 0.1
	}
	alpha, gamma, rho, sigma := 1.0, 2.0, 0.5, 0.5
	if opt.Reflection > 0 {
		alpha = opt.Reflection
	}
	if opt.Expansion > 0 {
		gamma = opt.Expansion
	}
	if opt.Contraction > 0 {
		rho = opt.Contraction
	}
	if opt.Shrink > 0 {
		sigma = opt.Shrink
	}

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Initial simplex: x0 plus per-coordinate perturbations.
	verts := make([]vertex, n+1)
	verts[0] = vertex{x: append([]float64(nil), x0...), f: eval(x0)}
	if math.IsInf(verts[0].f, 0) {
		return Result{}, ErrBadStart
	}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		h := opt.Step * math.Abs(x[i])
		if h == 0 {
			h = opt.Step
		}
		x[i] += h
		verts[i+1] = vertex{x: x, f: eval(x)}
	}

	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	var iter int
	converged := false
	for iter = 0; iter < opt.MaxIter; iter++ {
		sort.Slice(verts, func(a, b int) bool { return verts[a].f < verts[b].f })
		best, worst := verts[0], verts[n]

		// Convergence: function spread and simplex diameter.
		if math.Abs(worst.f-best.f) <= opt.TolF*(math.Abs(best.f)+opt.TolF) {
			maxd := 0.0
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(verts[i].x[j] - best.x[j]); d > maxd {
						maxd = d
					}
				}
			}
			if maxd <= opt.TolX {
				converged = true
				break
			}
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += verts[i].x[j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		// Reflection.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(xr)
		switch {
		case fr < best.f:
			// Expansion.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			fe := eval(xe)
			if fe < fr {
				copy(verts[n].x, xe)
				verts[n].f = fe
			} else {
				copy(verts[n].x, xr)
				verts[n].f = fr
			}
		case fr < verts[n-1].f:
			// Accept reflection.
			copy(verts[n].x, xr)
			verts[n].f = fr
		default:
			// Contraction (outside if the reflected point improved on the
			// worst, inside otherwise).
			if fr < worst.f {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + rho*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, worst.f) {
				copy(verts[n].x, xc)
				verts[n].f = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						verts[i].x[j] = best.x[j] + sigma*(verts[i].x[j]-best.x[j])
					}
					verts[i].f = eval(verts[i].x)
				}
			}
		}
	}

	sort.Slice(verts, func(a, b int) bool { return verts[a].f < verts[b].f })
	return Result{
		X:          verts[0].x,
		F:          verts[0].f,
		Iterations: iter,
		Evals:      evals,
		Converged:  converged,
	}, nil
}
