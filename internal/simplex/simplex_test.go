package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinimizeQuadratic1D(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	res, err := Minimize(f, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-5 {
		t.Fatalf("x = %v, want 3", res.X[0])
	}
	if !res.Converged {
		t.Error("did not converge")
	}
}

func TestMinimizeSphereND(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		f := func(x []float64) float64 {
			var s float64
			for i, v := range x {
				c := float64(i + 1)
				s += (v - c) * (v - c)
			}
			return s
		}
		x0 := make([]float64, d)
		res, err := Minimize(f, x0, Options{MaxIter: 5000})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.X {
			if math.Abs(v-float64(i+1)) > 1e-4 {
				t.Fatalf("d=%d x[%d] = %v, want %d (f=%v)", d, i, v, i+1, res.F)
			}
		}
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Minimize(f, []float64{-1.2, 1}, Options{MaxIter: 10000, TolF: 1e-14, TolX: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("x = %v, want (1,1); f=%v", res.X, res.F)
	}
}

func TestMinimizeNonSmoothAbs(t *testing.T) {
	// Nelder–Mead's selling point (and why the paper uses it for the L1
	// loss): it handles non-differentiable objectives.
	f := func(x []float64) float64 { return math.Abs(x[0]-2) + math.Abs(x[1]+1) }
	res, err := Minimize(f, []float64{10, 10}, Options{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestMinimizeWithInfConstraint(t *testing.T) {
	// +Inf outside x>0 encodes a positivity constraint.
	f := func(x []float64) float64 {
		if x[0] <= 0 {
			return math.Inf(1)
		}
		return x[0] + 1/x[0] // minimum at x=1, f=2
	}
	res, err := Minimize(f, []float64{5}, Options{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Fatalf("x = %v, want 1", res.X[0])
	}
}

func TestMinimizeBadStart(t *testing.T) {
	f := func(x []float64) float64 { return math.Inf(1) }
	if _, err := Minimize(f, []float64{0}, Options{}); err != ErrBadStart {
		t.Fatalf("err = %v, want ErrBadStart", err)
	}
}

func TestMinimizeNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	res, err := Minimize(f, []float64{3}, Options{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Fatalf("x = %v", res.X[0])
	}
}

func TestMinimizeZeroDim(t *testing.T) {
	res, err := Minimize(func(x []float64) float64 { return 42 }, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 42 || !res.Converged {
		t.Fatalf("res = %+v", res)
	}
}

func TestMinimizeMaxIterRespected(t *testing.T) {
	evals := 0
	f := func(x []float64) float64 {
		evals++
		return x[0] * x[0]
	}
	res, _ := Minimize(f, []float64{100}, Options{MaxIter: 5})
	if res.Iterations > 5 {
		t.Fatalf("iterations = %d > 5", res.Iterations)
	}
	if res.Evals != evals {
		t.Fatalf("Evals = %d, counted %d", res.Evals, evals)
	}
}

func TestMinimizeRandomQuadratics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		d := rng.Intn(5) + 1
		target := make([]float64, d)
		for i := range target {
			target[i] = rng.NormFloat64() * 5
		}
		f := func(x []float64) float64 {
			var s float64
			for i := range x {
				dd := x[i] - target[i]
				s += dd * dd * float64(i+1)
			}
			return s
		}
		x0 := make([]float64, d)
		res, err := Minimize(f, x0, Options{MaxIter: 8000})
		if err != nil {
			t.Fatal(err)
		}
		for i := range target {
			if math.Abs(res.X[i]-target[i]) > 1e-3*(1+math.Abs(target[i])) {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, res.X[i], target[i])
			}
		}
	}
}
