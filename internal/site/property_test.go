package site

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// TestInvariantsUnderRandomRegimeStreams drives a site with randomized
// regime-switching streams and asserts the structural invariants of
// Algorithm 1 that must hold regardless of what the data does:
//
//  1. accounting: Σ model counters == chunks seen × M;
//  2. coverage: closed event spans + the current model's open span
//     partition [1, chunksSeen] with no gaps or overlaps;
//  3. identity: model IDs are unique and the active model is in none of
//     the closed archive positions twice.
func TestInvariantsUnderRandomRegimeStreams(t *testing.T) {
	f := func(seed int64, switchPattern []bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{
			SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
			CMax: 3, Seed: seed, ChunkSize: 150,
		})
		if err != nil {
			return false
		}
		// Random walk over 4 regimes driven by the quick-generated pattern.
		centers := []float64{-60, -20, 20, 60}
		cur := 0
		chunksToFeed := len(switchPattern)
		if chunksToFeed > 12 {
			chunksToFeed = 12
		}
		for c := 0; c < chunksToFeed; c++ {
			if switchPattern[c] {
				cur = (cur + 1 + rng.Intn(3)) % len(centers)
			}
			mix := gaussian.MustMixture([]float64{1},
				[]*gaussian.Component{gaussian.Spherical(linalg.Vector{centers[cur]}, 1)})
			for i := 0; i < 150; i++ {
				if _, err := s.Observe(mix.Sample(rng)); err != nil {
					return false
				}
			}
		}
		return checkSiteInvariants(t, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func checkSiteInvariants(t *testing.T, s *Site) bool {
	t.Helper()
	// 1. Counter accounting.
	var total int
	ids := map[int]bool{}
	for _, m := range s.Models() {
		total += m.Counter
		if ids[m.ID] {
			t.Logf("duplicate model id %d", m.ID)
			return false
		}
		ids[m.ID] = true
	}
	if want := s.ChunksSeen() * s.ChunkSize(); total != want {
		t.Logf("counter sum %d != chunks×M %d", total, want)
		return false
	}
	// 2. Event spans are increasing, non-overlapping and within range;
	// together with the open span they cover every chunk.
	covered := 0
	prevEnd := 0
	for i := 0; i < s.Events().Len(); i++ {
		e := s.Events().At(i)
		if e.StartChunk != prevEnd+1 {
			t.Logf("gap or overlap before span %v (prev end %d)", e, prevEnd)
			return false
		}
		if !ids[e.ModelID] {
			t.Logf("span %v references unknown model", e)
			return false
		}
		covered += e.EndChunk - e.StartChunk + 1
		prevEnd = e.EndChunk
	}
	if cur := s.Current(); cur != nil {
		covered += s.ChunksSeen() - prevEnd
	}
	if covered != s.ChunksSeen() {
		t.Logf("span coverage %d != %d chunks", covered, s.ChunksSeen())
		return false
	}
	// 3. Every model's mixture is well-formed.
	for _, m := range s.Models() {
		var wsum float64
		for j := 0; j < m.Mixture.K(); j++ {
			wsum += m.Mixture.Weight(j)
		}
		if wsum < 0.999 || wsum > 1.001 {
			t.Logf("model %d weights sum to %v", m.ID, wsum)
			return false
		}
	}
	return true
}

// TestLandmarkWeightsMatchCounters is the window-composition property: the
// landmark mixture's per-model mass must equal each model's share of the
// total counter mass.
func TestLandmarkWeightsMatchCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s, _ := New(Config{
		SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
		Seed: 1, ChunkSize: 150,
	})
	for _, mean := range []float64{0, 70, -70, 0} { // last reactivates model 1
		mix := gaussian.MustMixture([]float64{1},
			[]*gaussian.Component{gaussian.Spherical(linalg.Vector{mean}, 1)})
		for i := 0; i < 150*2; i++ {
			if _, err := s.Observe(mix.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	lm := s.LandmarkMixture()
	var total float64
	for _, m := range s.Models() {
		total += float64(m.Counter)
	}
	// Sum landmark weights per model by matching component identity.
	for _, m := range s.Models() {
		var share float64
		for j := 0; j < lm.K(); j++ {
			for jj := 0; jj < m.Mixture.K(); jj++ {
				if lm.Component(j) == m.Mixture.Component(jj) {
					share += lm.Weight(j)
				}
			}
		}
		want := float64(m.Counter) / total
		if diff := share - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("model %d landmark share %v, want %v", m.ID, share, want)
		}
	}
}
