// Package site implements CluDistream's remote-site processing (Section
// 5.1 of the paper): Algorithm 1 ProcessingSubStream with the
// test-and-cluster strategy, the model list with per-model counters, the
// multi-test extension governed by c_max, and the event table that records
// the stream's evolving behaviour.
//
// The site is single-goroutine by design — each remote site owns exactly
// one stream — and communicates only by returning Update values, which the
// transport/netsim layers deliver to the coordinator. This mirrors the
// paper's architecture where remote sites never talk to each other.
package site

import (
	"fmt"
	"math"

	"cludistream/internal/chunk"
	"cludistream/internal/em"
	"cludistream/internal/events"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/smem"
	"cludistream/internal/telemetry"
)

// UpdateKind discriminates the two message types a site can emit
// (Section 5.3: synopsis-based information exchange).
type UpdateKind int

const (
	// NewModel carries full mixture parameters for a freshly clustered
	// model.
	NewModel UpdateKind = iota
	// WeightUpdate carries only a model ID and an additional record count —
	// sent when the multi-test strategy re-activates an archived model, so
	// the coordinator can shift weight without receiving parameters again.
	WeightUpdate
)

func (k UpdateKind) String() string {
	if k == WeightUpdate {
		return "weight-update"
	}
	return "new-model"
}

// Update is the unit of site→coordinator communication.
type Update struct {
	SiteID  int
	ModelID int
	Kind    UpdateKind
	// Mixture is set for NewModel updates only.
	Mixture *gaussian.Mixture
	// Count is the number of records this update accounts for (M for a new
	// model's first chunk, M per re-fitted chunk for weight updates).
	Count int
	// TraceID and SpanID carry the causal trace of the chunk that produced
	// this update (zero when tracing is disabled): the trace minted at
	// chunk ingest and its root span, which downstream layers hang their
	// own spans under (see internal/telemetry tracing).
	TraceID uint64
	SpanID  uint64
}

// Model is one entry of the site's model list: a mixture, its reference
// average log-likelihood Avg_Pr0, and the counter c of records it explains.
type Model struct {
	ID int
	// Mixture is the Gaussian mixture learned by EM.
	Mixture *gaussian.Mixture
	// RefAvgLL is Avg_Pr0, the average log-likelihood of the model on the
	// chunk it was trained on — the baseline of the J_fit test.
	RefAvgLL float64
	// Counter is c: how many records have been attributed to this model.
	Counter int
	// startChunk is the first chunk of the model's current governance span
	// (internal; spans are published to the event list on retirement).
	startChunk int
}

// Config parameterizes a Site.
type Config struct {
	// SiteID identifies this site in updates.
	SiteID int
	// Dim is the data dimensionality d.
	Dim int
	// K is the number of components per local mixture model.
	K int
	// Epsilon is ε: both the J_fit tolerance and the chunk-size driver.
	Epsilon float64
	// FitEps, when non-zero, overrides ε as the J_fit threshold while
	// Epsilon keeps driving the chunk size. The paper couples both to ε,
	// but its Theorem-2 bound assumes the reference Avg_Pr0 is an unbiased
	// likelihood — in practice Avg_Pr0 is measured on the chunk the model
	// was *trained* on, so it carries an overfit bias of order
	// (#parameters)/M that the threshold must absorb. Deployments calibrate
	// FitEps to ~3× the stationary chunk-to-chunk fluctuation (see
	// EXPERIMENTS.md); negative FitEps makes every test fail
	// (always-cluster, for ablations).
	FitEps float64
	// Delta is δ, the probability error bound.
	Delta float64
	// CMax is c_max, the maximum number of models tested per chunk (the
	// current model plus up to CMax-1 archived ones). Default 4, the
	// paper's recommended setting.
	CMax int
	// EM configures the inner EM runs (K and Seed are filled from this
	// Config when zero).
	EM em.Config
	// Seed drives deterministic EM initialization.
	Seed int64
	// SharpTest switches the J_fit statistic to the max-component average
	// log-likelihood that Theorem 2's proof sharpens the test with, instead
	// of the full mixture likelihood (DESIGN.md ablation).
	SharpTest bool
	// ChunkSize overrides the Theorem-1 chunk size when positive. Used by
	// tests and by experiments that sweep M directly.
	ChunkSize int
	// WarmStart selects the refit initialization strategy. The default
	// (WarmStartOn) seeds each refit's EM from the best-scoring model the
	// multi-test loop just evaluated — those scores are already computed,
	// and a nearby seed skips k-means++ and most iterations (the lever the
	// streaming-GMM literature measures). WarmStartCold is the escape
	// hatch: always initialize from scratch, bit-identical to the
	// pre-warm-start code path. Warm starts never apply to the SMEM,
	// auto-K or incomplete-data fitters, which keep their own init.
	WarmStart string
	// WarmAuditEvery is the cold-audit cadence of the warm-start quality
	// guard (default 8): every Nth warm refit also runs the cold fit and
	// keeps whichever converged to the higher log-likelihood, so a
	// systematic warm-start quality regression cannot persist silently.
	// Set to 1 to audit every refit (output log-likelihood then provably
	// never trails cold start). Warm results that come back non-finite
	// fall back to cold immediately, regardless of cadence.
	WarmAuditEvery int
	// WarmMargin bounds how far from fitting the best tested model may be
	// and still seed a warm start, measured on the J_fit margin
	// |Avg_Prn − Avg_Pr0|. Warm starts are a drift optimization: a model
	// that barely failed the ε test is one EM polish away from the new
	// regime, while a model hundreds of nats off describes a different
	// regime entirely, and seeding EM from it parks the fit in a worse
	// local optimum than k-means++ would find. Candidates with margin
	// above WarmMargin are treated as novel regimes and refit cold.
	// Default 4×FitEps (a few Theorem-2 noise widths past the test
	// boundary); negative means no bound.
	WarmMargin float64
	// PruneTopM bounds the per-record J_fit evaluation to the top-m
	// nearest-mean components via the mixture's k-d score index
	// (gaussian.AvgLogLikelihoodBounds). The pruned pass yields a sound
	// interval around the exact average log-likelihood; the verdict is
	// taken from the interval only when it decides the ε test with slack
	// beyond floating-point roundoff, and falls back to the exact batched
	// scan otherwise — so every fit/refit decision, every update emitted
	// and every warm-start seed is bit-identical to the exact path (the
	// golden-fingerprint and property tests pin this). Pruning engages
	// only for models with K ≥ 2·PruneTopM components and never under
	// SharpTest (the sharpened statistic keeps the exact scan). On chunks
	// where a pruned verdict was used, the telemetry margin histogram and
	// journal Values carry the proven bound instead of the exact margin —
	// diagnostics only; decisions and outputs are unaffected. 0 means the
	// default (4); negative disables pruning (the exact reference path).
	PruneTopM int
	// SharedChunkStats controls the shared per-chunk scoring workspace:
	// "on" (the default) computes the chunk's complete-records view once
	// per chunk and reuses it across the whole multi-test, memoizes exact
	// scores computed during the test loop, and re-scores the tested
	// models of a refit in one fused pass over the chunk
	// (gaussian.AvgLogLikelihoodMulti); "off" re-derives everything per
	// probe — the reference re-scan path, bit-identical by construction
	// since all cached values are pure functions of the chunk.
	SharedChunkStats string
	// EmitFitWeightUpdates makes a fitting chunk emit a WeightUpdate for
	// the current model instead of staying silent. Landmark-window
	// deployments leave this off (Section 5.3's stability property);
	// sliding-window deployments need it so the coordinator's per-model
	// weights stay in sync with the deletions that will follow (Section 7).
	EmitFitWeightUpdates bool
	// UseSMEM clusters chunks with split-and-merge EM (Ueda et al. [23])
	// instead of plain EM — slower, but escapes the local optima plain EM
	// can park in. Requires K ≥ 3.
	UseSMEM bool
	// AutoKMax, when positive, selects each new model's component count by
	// BIC over K ∈ [max(AutoKMin,1), AutoKMax] instead of using the fixed
	// K — operationalizing the paper's "we do not assume the constant
	// number of component models for the data stream". Mutually exclusive
	// with UseSMEM.
	AutoKMax int
	// AutoKMin is the lower bound of the AutoKMax sweep (default 1).
	AutoKMin int
	// Telemetry, when non-nil, receives per-chunk decision counters and
	// journal events (chunk tested/fit/refit/reactivated with the J_fit
	// margin, archive-hit depth, EM iteration counts) and is propagated to
	// the inner EM runs. It never alters clustering output: with Telemetry
	// nil the only cost is a nil check per instrument call site, and with
	// it set the instruments observe values the algorithm already computed
	// (pinned bit-identical by the facade's telemetry tests).
	Telemetry *telemetry.Registry
}

// Accepted Config.WarmStart values.
const (
	// WarmStartOn seeds refit EM from the best-scoring tested model.
	WarmStartOn = "on"
	// WarmStartCold always initializes refit EM from scratch (k-means++).
	WarmStartCold = "cold"
)

// Accepted Config.SharedChunkStats values.
const (
	// SharedStatsOn caches per-chunk views and scores across the multi-test.
	SharedStatsOn = "on"
	// SharedStatsOff re-derives everything per probe (reference path).
	SharedStatsOff = "off"
)

// defaultPruneTopM is the candidate-set size the pruned scorer evaluates
// per record when Config.PruneTopM is zero.
const defaultPruneTopM = 4

// pruneGuardRel scales the decision slack of the pruned J_fit verdict:
// the bound interval must clear the ε threshold by
// pruneGuardRel·(1 + |Avg_Pr0| + |bound|) before the pruned verdict is
// trusted. The slack is orders of magnitude above the roundoff of the
// batched log-sum-exp (~K·2⁻⁵²·|avg|) and orders of magnitude below any
// meaningful ε, so pruned verdicts provably agree with the exact path.
const pruneGuardRel = 1e-9

// warmRelTol is the relative log-likelihood stop applied to warm-started
// refits when Config.EM.RelTol is unset. Audited refits compare against a
// full-precision cold fit, so a systematically premature stop surfaces as
// audit losses rather than silent quality drift.
const warmRelTol = 1e-4

func (c Config) withDefaults() Config {
	if c.CMax <= 0 {
		c.CMax = 4
	}
	if c.PruneTopM == 0 {
		c.PruneTopM = defaultPruneTopM
	} else if c.PruneTopM < 0 {
		c.PruneTopM = 0 // disabled: exact scans only
	}
	if c.SharedChunkStats == "" {
		c.SharedChunkStats = SharedStatsOn
	}
	if c.FitEps == 0 {
		c.FitEps = c.Epsilon
	}
	if c.WarmStart == "" {
		c.WarmStart = WarmStartOn
	}
	if c.WarmAuditEvery <= 0 {
		c.WarmAuditEvery = 8
	}
	if c.WarmMargin == 0 {
		c.WarmMargin = 4 * c.FitEps
	} else if c.WarmMargin < 0 {
		c.WarmMargin = math.Inf(1)
	}
	c.EM.K = c.K
	if c.EM.Seed == 0 {
		c.EM.Seed = c.Seed
	}
	if c.EM.Telemetry == nil {
		c.EM.Telemetry = c.Telemetry
	}
	return c
}

// Stats counts the work a site has done, backing the Theorem-4 cost model
// and the Figure 8/13/14 experiments.
type Stats struct {
	Records     int // records observed
	Chunks      int // full chunks processed
	Tests       int // model-fit tests run (λC each)
	EMRuns      int // EM clusterings run (C each)
	Fits        int // chunks that fit an existing model
	Refits      int // chunks that required new EM models
	Reactivated int // chunks explained by re-activating an archived model

	// Warm-start refit accounting (zero under WarmStartCold).
	WarmRefits      int // refits that kept the warm-started fit
	ColdRefits      int // refits run cold (disabled, no seed, or K mismatch)
	WarmFallbacks   int // warm fits discarded for a cold result (audit loss or non-finite)
	WarmAudits      int // warm refits that also ran the cold comparison fit
	IterationsSaved int // Σ (cold iters − warm iters) over audited refits; can go negative

	// Pruned-scoring accounting (zero with PruneTopM disabled).
	PruneHits      int // J_fit verdicts decided by the pruned bound interval
	PruneFallbacks int // pruned intervals too wide to decide: exact re-scan ran
	// Shared-stats memo accounting (zero with SharedChunkStats off).
	StatCacheHits   int // refit re-scores served from the multi-test memo
	StatCacheMisses int // refit re-scores that had to scan the chunk
}

// siteTele holds the site's telemetry instruments, resolved once at
// construction. With no registry configured every pointer is nil and each
// call below is a single nil-check branch — the zero-overhead disabled
// path the telemetry tests pin.
type siteTele struct {
	reg         *telemetry.Registry // journal access; nil when disabled
	tracer      *telemetry.Tracer   // per-chunk causal traces; nil unless enabled
	records     *telemetry.Counter
	chunks      *telemetry.Counter
	tested      *telemetry.Counter
	fits        *telemetry.Counter
	refits      *telemetry.Counter
	reactivated *telemetry.Counter
	tests       *telemetry.Counter
	emRuns      *telemetry.Counter
	warmRefits  *telemetry.Counter
	coldRefits  *telemetry.Counter
	warmFalls   *telemetry.Counter
	iterSaved   *telemetry.Counter
	pruneHits   *telemetry.Counter
	pruneFalls  *telemetry.Counter
	statHits    *telemetry.Counter
	statMisses  *telemetry.Counter
	jfitMargin  *telemetry.Histogram
	hitDepth    *telemetry.Histogram
}

func newSiteTele(reg *telemetry.Registry) siteTele {
	if reg == nil {
		return siteTele{}
	}
	return siteTele{
		reg:         reg,
		tracer:      reg.Tracer(),
		records:     reg.Counter("site.records"),
		chunks:      reg.Counter("site.chunks"),
		tested:      reg.Counter("site.chunks_tested"),
		fits:        reg.Counter("site.chunks_fit"),
		refits:      reg.Counter("site.chunks_refit"),
		reactivated: reg.Counter("site.chunks_reactivated"),
		tests:       reg.Counter("site.tests"),
		emRuns:      reg.Counter("site.em_runs"),
		warmRefits:  reg.Counter("site.warm_refits"),
		coldRefits:  reg.Counter("site.cold_refits"),
		warmFalls:   reg.Counter("site.warm_fallbacks"),
		iterSaved:   reg.Counter("site.warm_iterations_saved"),
		pruneHits:   reg.Counter("site.prune_hits"),
		pruneFalls:  reg.Counter("site.prune_fallbacks"),
		statHits:    reg.Counter("site.stat_cache_hits"),
		statMisses:  reg.Counter("site.stat_cache_misses"),
		// J_fit margins live on the ε scale; the c_max recommendation is
		// 3–4, so depth buckets 1..4 plus overflow cover every finding.
		jfitMargin: reg.Histogram("site.jfit_margin", 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5),
		hitDepth:   reg.Histogram("site.archive_hit_depth", 1, 2, 3, 4),
	}
}

// Site is one remote-site processor.
type Site struct {
	cfg     Config
	chunker *chunk.Chunker
	m       int // chunk size M
	tele    siteTele

	current *Model
	// archive holds retired models, oldest first. The multi-test strategy
	// probes the most recent CMax-1 of them.
	archive []*Model
	events  *events.List

	chunkNum    int // number of completed chunks (1-based after first)
	nextModelID int

	// scratch backs the batched chunk scoring (J_fit tests and reference
	// likelihoods); the site is single-goroutine, so one workspace serves
	// every model it ever tests.
	scratch *gaussian.BatchScratch

	// scan is the shared per-chunk workspace (SharedChunkStats on): the
	// complete-records view is filtered once per chunk and reused by every
	// probe of the multi-test.
	scan chunk.Scan
	// tested records the models probed on the current chunk, in test
	// order, with any exactly computed score — the refit path replays the
	// exact warm-seed selection from it (and the memo saves re-scans).
	tested []testedModel
	// rescanMix/rescanAvg/rescanIdx back the fused refit re-scan.
	rescanMix []*gaussian.Mixture
	rescanAvg []float64
	rescanIdx []int

	// warmSeq counts warm-start refit attempts, driving the audit cadence.
	warmSeq int

	// Trace bookkeeping (all zero while tracing is disabled). chunkIngestT
	// is the clock reading when the first record of the in-progress chunk
	// arrived; curTrace/curRoot identify the trace of the chunk being
	// processed; lastTrace/lastRoot keep the most recently completed
	// chunk's context so window deletions can be attributed to it.
	chunkIngestT   float64
	chunkIngestSet bool
	curTrace       uint64
	curRoot        uint64
	lastTrace      uint64
	lastRoot       uint64
	fitNote        string // em-fit span outcome, set by fitChunk

	stats Stats
}

// testedModel is one multi-test probe: the model, the chunk's average
// log-likelihood under it when computed exactly, and whether it was (a
// pruned verdict leaves avg as a bound, to be replaced before use).
type testedModel struct {
	m     *Model
	avg   float64
	exact bool
}

// New constructs a Site. Dim, K, Epsilon and Delta are required.
func New(cfg Config) (*Site, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("site: Dim = %d", cfg.Dim)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("site: K = %d", cfg.K)
	}
	if cfg.WarmStart != WarmStartOn && cfg.WarmStart != WarmStartCold {
		return nil, fmt.Errorf("site: WarmStart = %q (want %q or %q)", cfg.WarmStart, WarmStartOn, WarmStartCold)
	}
	if cfg.SharedChunkStats != SharedStatsOn && cfg.SharedChunkStats != SharedStatsOff {
		return nil, fmt.Errorf("site: SharedChunkStats = %q (want %q or %q)", cfg.SharedChunkStats, SharedStatsOn, SharedStatsOff)
	}
	m := cfg.ChunkSize
	if m <= 0 {
		m = chunk.Size(cfg.Dim, cfg.Epsilon, cfg.Delta)
	}
	if m < cfg.K {
		return nil, fmt.Errorf("site: chunk size %d < K %d", m, cfg.K)
	}
	return &Site{
		cfg:         cfg,
		chunker:     chunk.NewChunker(m, cfg.Dim),
		m:           m,
		tele:        newSiteTele(cfg.Telemetry),
		events:      events.NewList(),
		nextModelID: 1,
		scratch:     gaussian.NewBatchScratch(),
		tested:      make([]testedModel, 0, cfg.CMax),
		rescanMix:   make([]*gaussian.Mixture, 0, cfg.CMax),
		rescanAvg:   make([]float64, cfg.CMax),
		rescanIdx:   make([]int, 0, cfg.CMax),
	}, nil
}

// ChunkSize returns M, the Theorem-1 chunk size in effect.
func (s *Site) ChunkSize() int { return s.m }

// ID returns the site's identifier.
func (s *Site) ID() int { return s.cfg.SiteID }

// Observe consumes one record and returns any updates produced (non-nil
// only when a chunk completed and changed the model state). The record is
// copied into the chunk buffer, so the caller may reuse x immediately; in
// steady-state test mode (chunk fits, nothing transmitted) the whole path
// — buffering, chunk completion, batched J_fit scoring — performs zero
// heap allocations per record, with chunk storage recycled through the
// chunker's two-buffer protocol.
func (s *Site) Observe(x linalg.Vector) ([]Update, error) {
	// Trace ingest time: the clock reading when a chunk's first record
	// arrives. With tracing off this is one nil check per record, which is
	// what keeps the steady-state path at zero allocations.
	if s.tele.tracer != nil && s.chunker.Pending() == 0 {
		s.chunkIngestT = s.tele.tracer.Now()
		s.chunkIngestSet = true
	}
	full, err := s.chunker.Add(x)
	if err != nil {
		return nil, err
	}
	s.stats.Records++
	s.tele.records.Inc()
	if full == nil {
		return nil, nil
	}
	ups, err := s.ProcessChunk(full)
	// Nothing downstream retains chunk records (EM and the scorers copy
	// what they keep), so the buffer can go straight back into rotation.
	s.chunker.Recycle(full)
	return ups, err
}

// ObserveAll consumes a batch of records, collecting all updates.
func (s *Site) ObserveAll(xs []linalg.Vector) ([]Update, error) {
	var out []Update
	for _, x := range xs {
		u, err := s.Observe(x)
		if err != nil {
			return out, err
		}
		out = append(out, u...)
	}
	return out, nil
}

// ProcessChunk runs one iteration of Algorithm 1 on a complete chunk. It is
// exported so the experiment harness can drive sites chunk-at-a-time.
//
// With tracing enabled it mints the chunk's trace (rooted at the ingest
// time Observe captured, or at the current clock for direct callers),
// stamps the trace context onto every emitted update, and marks the
// site-decision point when Algorithm 1 settles the chunk's fate.
func (s *Site) ProcessChunk(data []linalg.Vector) ([]Update, error) {
	tr := s.tele.tracer
	if tr != nil {
		ingest := s.chunkIngestT
		if !s.chunkIngestSet {
			ingest = tr.Now()
		}
		s.chunkIngestSet = false
		s.curTrace, s.curRoot = tr.StartTrace(s.cfg.SiteID, s.chunkNum+1, ingest)
	}
	ups, err := s.processChunk(data)
	if tr != nil && s.curTrace != 0 {
		tr.FinishDecision(s.curTrace, tr.Now())
		for i := range ups {
			ups[i].TraceID = s.curTrace
			ups[i].SpanID = s.curRoot
		}
		s.lastTrace, s.lastRoot = s.curTrace, s.curRoot
		s.curTrace, s.curRoot = 0, 0
	}
	return ups, err
}

// LastTrace returns the trace context of the most recently completed
// chunk (zeros while tracing is disabled or before the first chunk).
// Window expiry deletions are attributed to it: the deletion is caused by
// the chunk whose arrival slid the window.
func (s *Site) LastTrace() (traceID, spanID uint64) { return s.lastTrace, s.lastRoot }

// processChunk is Algorithm 1's body, with the trace context of the
// current chunk (if any) in s.curTrace/s.curRoot.
func (s *Site) processChunk(data []linalg.Vector) ([]Update, error) {
	if len(data) != s.m {
		return nil, fmt.Errorf("site: chunk of %d records, want %d", len(data), s.m)
	}
	s.chunkNum++
	s.stats.Chunks++
	s.tele.chunks.Inc()
	// Bind the shared per-chunk workspace and clear the probe memo; every
	// test below scores the same complete-records view.
	s.scan.Reset(data)
	s.tested = s.tested[:0]

	// Line 2: the very first chunk is always clustered.
	if s.current == nil {
		return s.clusterNewModel(data, nil)
	}

	// Test 1: current model (line 5, FitDistribution). Each probe's score
	// is memoized in s.tested; if every test fails, refitSeed replays the
	// exact best-scoring-model selection from the memo (re-scoring any
	// probe whose verdict came from the pruned bound), so the warm-start
	// seed is bit-identical to the exact path's.
	testSpan := s.tele.tracer.Begin(s.curTrace, s.curRoot, "chunk-test", s.cfg.SiteID, s.current.ID)
	s.stats.Tests++
	s.tele.tests.Inc()
	s.tele.tested.Inc()
	avg, margin, ok, exact := s.fitScore(s.current, data)
	s.tested = append(s.tested, testedModel{m: s.current, avg: avg, exact: exact})
	s.tele.jfitMargin.Observe(margin)
	if ok {
		testSpan.End(1, "fit")
		s.current.Counter += s.m
		s.stats.Fits++
		s.tele.fits.Inc()
		s.tele.reg.Record(telemetry.Event{
			Kind: "chunk-fit", Site: s.cfg.SiteID, Model: s.current.ID,
			Value: margin, N: s.chunkNum,
		})
		if s.cfg.EmitFitWeightUpdates {
			return []Update{{
				SiteID:  s.cfg.SiteID,
				ModelID: s.current.ID,
				Kind:    WeightUpdate,
				Count:   s.m,
			}}, nil
		}
		// Stability (Section 5.3): nothing is transmitted.
		return nil, nil
	}

	// Multi-test: probe the most recent archived models, newest first,
	// up to CMax-1 additional tests.
	budget := s.cfg.CMax - 1
	depth := 0 // archived models probed so far (the multi-test depth)
	for i := len(s.archive) - 1; i >= 0 && budget > 0; i-- {
		cand := s.archive[i]
		s.stats.Tests++
		s.tele.tests.Inc()
		budget--
		depth++
		avg, margin, ok, exact := s.fitScore(cand, data)
		s.tested = append(s.tested, testedModel{m: cand, avg: avg, exact: exact})
		s.tele.jfitMargin.Observe(margin)
		if ok {
			testSpan.End(1+depth, "reactivated")
			s.reactivate(i)
			cand.Counter += s.m
			s.stats.Reactivated++
			s.tele.reactivated.Inc()
			s.tele.hitDepth.Observe(float64(depth))
			s.tele.reg.Record(telemetry.Event{
				Kind: "chunk-reactivated", Site: s.cfg.SiteID, Model: cand.ID,
				Value: margin, N: depth,
			})
			// The coordinator must learn that weight moved to an old model.
			return []Update{{
				SiteID:  s.cfg.SiteID,
				ModelID: cand.ID,
				Kind:    WeightUpdate,
				Count:   s.m,
			}}, nil
		}
	}

	// No model fits: archive the current model (lines 8–9) and cluster,
	// seeding EM from the best-scoring model the tests just evaluated —
	// but only if that model nearly fit (drift); a seed far past the
	// WarmMargin bound describes a different regime and would steer EM
	// into a worse basin than a cold start.
	testSpan.End(len(s.tested), "refit")
	bestSeed := s.refitSeed(data)
	s.retireCurrent()
	return s.clusterNewModel(data, bestSeed)
}

// refitSeed selects the warm-start seed for a refit: the best-scoring
// model of the failed multi-test pass, or nil when even the best margin
// exceeds WarmMargin. The selection replays the exact path's bookkeeping
// — first tested model initializes, later ones replace it on strictly
// higher average log-likelihood — over exact scores: probes decided by
// the pruned bound are re-scored exactly here (one fused pass over the
// chunk with SharedChunkStats on), probes that already ran the exact scan
// reuse the memoized value. Refits are the rare path and the re-scan is
// amortized against the EM run that follows, so pruning keeps its win on
// fitting chunks without perturbing a single refit decision.
func (s *Site) refitSeed(data []linalg.Vector) *gaussian.Mixture {
	if len(s.tested) == 0 {
		return nil
	}
	shared := s.cfg.SharedChunkStats == SharedStatsOn
	s.rescanMix = s.rescanMix[:0]
	s.rescanIdx = s.rescanIdx[:0]
	for i := range s.tested {
		if s.tested[i].exact {
			// The score was computed during the test loop — the legacy path
			// also reused it (bestAvg tracking), so this is not shared-stats
			// specific; only the accounting is.
			if shared {
				s.stats.StatCacheHits++
				s.tele.statHits.Inc()
			}
			continue
		}
		if shared {
			s.stats.StatCacheMisses++
			s.tele.statMisses.Inc()
			s.rescanMix = append(s.rescanMix, s.tested[i].m.Mixture)
			s.rescanIdx = append(s.rescanIdx, i)
			continue
		}
		// Reference path: one exact scan per probe, like the pre-shared
		// code would have run.
		s.tested[i].avg = s.tested[i].m.Mixture.AvgLogLikelihoodScratch(s.evalRecords(data), s.scratch)
		s.tested[i].exact = true
	}
	if len(s.rescanMix) > 0 {
		gaussian.AvgLogLikelihoodMulti(s.rescanMix, s.scan.Complete(), s.rescanAvg[:len(s.rescanMix)], s.scratch)
		for j, i := range s.rescanIdx {
			s.tested[i].avg = s.rescanAvg[j]
			s.tested[i].exact = true
		}
	}
	best := s.tested[0]
	for _, tm := range s.tested[1:] {
		if tm.avg > best.avg {
			best = tm
		}
	}
	if math.Abs(best.avg-best.m.RefAvgLL) > s.cfg.WarmMargin {
		return nil
	}
	return best.m.Mixture
}

// fitScore evaluates the test criterion J_fit = |Avg_Prn − Avg_Pr0| ≤ ε
// (Eq. 4, justified by Theorem 2), returning the chunk's average
// log-likelihood under the model (the warm-start ranking key), the margin
// |Avg_Prn − Avg_Pr0| (the Theorem-2 observable telemetry journals), the
// verdict, and whether avg/margin are the exact statistics. The statistic
// is computed over the chunk's complete records only — incomplete ones
// have no well-defined joint likelihood — matching the reference Avg_Pr0.
//
// With pruning enabled, the model's k-d score index restricts each record
// to the PruneTopM nearest-mean components, yielding a sound interval
// around the exact average; when the interval decides the ε test with
// slack beyond the pruneGuardRel roundoff guard, the verdict is provably
// the exact path's and the scan is skipped (avg and margin then carry the
// proven bound, exact=false). An indecisive interval journals a
// "prune-fallback" event and runs the exact scan.
func (s *Site) fitScore(m *Model, data []linalg.Vector) (avg, margin float64, ok, exact bool) {
	eval := s.evalRecords(data)
	if topM := s.cfg.PruneTopM; topM > 0 && !s.cfg.SharpTest && m.Mixture.K() >= 2*topM {
		if lo, hi, bok := m.Mixture.AvgLogLikelihoodBounds(eval, topM, s.scratch); bok {
			loM, hiM := marginInterval(lo, hi, m.RefAvgLL)
			guard := pruneGuardRel * (1 + math.Abs(m.RefAvgLL) + math.Max(math.Abs(lo), math.Abs(hi)))
			switch {
			case hiM+guard <= s.cfg.FitEps:
				s.stats.PruneHits++
				s.tele.pruneHits.Inc()
				return lo, hiM, true, false
			case loM-guard > s.cfg.FitEps:
				s.stats.PruneHits++
				s.tele.pruneHits.Inc()
				return lo, loM, false, false
			}
			s.stats.PruneFallbacks++
			s.tele.pruneFalls.Inc()
			s.tele.reg.Record(telemetry.Event{
				Kind: "prune-fallback", Site: s.cfg.SiteID, Model: m.ID,
				Value: hiM - loM, N: s.chunkNum,
			})
			if tr := s.tele.tracer; tr != nil {
				now := tr.Now()
				tr.Record(s.curTrace, s.curRoot, "prune-fallback", s.cfg.SiteID, m.ID, now, now, s.chunkNum, "")
			}
		}
	}
	if s.cfg.SharpTest {
		avg = m.Mixture.AvgMaxComponentLLScratch(eval, s.scratch)
	} else {
		avg = m.Mixture.AvgLogLikelihoodScratch(eval, s.scratch)
	}
	margin = math.Abs(avg - m.RefAvgLL)
	return avg, margin, margin <= s.cfg.FitEps, true
}

// marginInterval maps an interval [lo, hi] around the chunk average onto
// the induced interval of the J_fit margin |avg − ref|.
func marginInterval(lo, hi, ref float64) (loM, hiM float64) {
	switch {
	case hi < ref:
		return ref - hi, ref - lo
	case lo > ref:
		return lo - ref, hi - ref
	default:
		return 0, math.Max(ref-lo, hi-ref)
	}
}

// evalRecords returns the chunk's complete-records view: served from the
// shared per-chunk scan when SharedChunkStats is on, recomputed per probe
// (the reference path) otherwise.
func (s *Site) evalRecords(data []linalg.Vector) []linalg.Vector {
	if s.cfg.SharedChunkStats == SharedStatsOn {
		return s.scan.Complete()
	}
	return completeOnly(data)
}

// completeOnly filters out records with missing attributes; it returns the
// input slice unchanged (no copy) when everything is complete.
func completeOnly(data []linalg.Vector) []linalg.Vector {
	for i, x := range data {
		if hasNaN(x) {
			out := make([]linalg.Vector, 0, len(data))
			out = append(out, data[:i]...)
			for _, y := range data[i+1:] {
				if !hasNaN(y) {
					out = append(out, y)
				}
			}
			return out
		}
	}
	return data
}

func hasNaN(x linalg.Vector) bool {
	for _, v := range x {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// clusterNewModel applies the configured clustering (plain EM, SMEM or a
// BIC K-sweep) to the chunk and installs the result as the current model
// (lines 2 and 10 of Algorithm 1). seed, when non-nil, is the best-scoring
// model of the failed multi-test pass, offered to the plain-EM path as a
// warm start.
func (s *Site) clusterNewModel(data []linalg.Vector, seed *gaussian.Mixture) ([]Update, error) {
	s.stats.EMRuns++
	s.stats.Refits++
	s.tele.emRuns.Inc()
	s.tele.refits.Inc()
	cfg := s.cfg.EM
	cfg.Seed = s.cfg.Seed + int64(s.nextModelID) // deterministic but varying
	fitSpan := s.tele.tracer.Begin(s.curTrace, s.curRoot, "em-fit", s.cfg.SiteID, s.nextModelID)
	cfg.TraceID, cfg.TraceParent = fitSpan.Context()
	s.fitNote = ""

	var mixture *gaussian.Mixture
	switch {
	case s.cfg.AutoKMax > 0:
		kMin := s.cfg.AutoKMin
		if kMin < 1 {
			kMin = 1
		}
		sel, err := em.FitBestK(data, kMin, s.cfg.AutoKMax, cfg)
		if err != nil {
			return nil, fmt.Errorf("site %d: K-sweep on chunk %d: %w", s.cfg.SiteID, s.chunkNum, err)
		}
		mixture = sel.Best.Mixture
		s.fitNote = "auto-k"
	case s.cfg.UseSMEM:
		res, err := smem.Fit(data, smem.Config{EM: cfg})
		if err != nil {
			return nil, fmt.Errorf("site %d: SMEM on chunk %d: %w", s.cfg.SiteID, s.chunkNum, err)
		}
		mixture = res.Mixture
		s.fitNote = "smem"
	case em.IsIncomplete(data):
		// Records with missing (NaN) attributes: the marginal-likelihood EM
		// of §3's "incomplete data" claim.
		res, err := em.FitIncomplete(data, cfg)
		if err != nil {
			return nil, fmt.Errorf("site %d: incomplete-data EM on chunk %d: %w", s.cfg.SiteID, s.chunkNum, err)
		}
		mixture = res.Mixture
		s.fitNote = "incomplete"
	default:
		res, err := s.fitChunk(data, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("site %d: EM on chunk %d: %w", s.cfg.SiteID, s.chunkNum, err)
		}
		mixture = res.Mixture
	}
	fitSpan.End(s.nextModelID, s.fitNote)

	var refLL float64
	if s.cfg.SharpTest {
		refLL = mixture.AvgMaxComponentLLScratch(s.evalRecords(data), s.scratch)
	} else {
		refLL = mixture.AvgLogLikelihoodScratch(s.evalRecords(data), s.scratch)
	}
	m := &Model{
		ID:         s.nextModelID,
		Mixture:    mixture,
		RefAvgLL:   refLL,
		Counter:    s.m,
		startChunk: s.chunkNum,
	}
	s.nextModelID++
	s.current = m
	s.tele.reg.Record(telemetry.Event{
		Kind: "chunk-refit", Site: s.cfg.SiteID, Model: m.ID,
		Value: refLL, N: s.chunkNum,
	})
	return []Update{{
		SiteID:  s.cfg.SiteID,
		ModelID: m.ID,
		Kind:    NewModel,
		Mixture: m.Mixture,
		Count:   s.m,
	}}, nil
}

// fitChunk runs the plain-EM refit, warm-started from seed when enabled.
//
// The warm path replaces k-means++ initialization with the seed mixture
// (em.Config.InitModel), which typically converges in a fraction of the
// iterations because the seed was scored as the closest existing
// explanation of the chunk. Two guards keep clustering quality from
// silently degrading: a non-finite warm log-likelihood falls back to a
// cold fit immediately, and every WarmAuditEvery-th warm refit also runs
// the cold fit and keeps whichever model converged to the higher
// log-likelihood. Both arms derive from the same deterministic seed, so
// site output remains a pure function of the stream.
func (s *Site) fitChunk(data []linalg.Vector, cfg em.Config, seed *gaussian.Mixture) (*em.Result, error) {
	warmOK := s.cfg.WarmStart == WarmStartOn && seed != nil &&
		seed.K() == cfg.K && seed.Dim() == s.cfg.Dim
	if !warmOK {
		s.stats.ColdRefits++
		s.tele.coldRefits.Inc()
		s.fitNote = "cold"
		return em.Fit(data, cfg)
	}

	warmCfg := cfg
	warmCfg.InitModel = seed
	if warmCfg.RelTol == 0 {
		// A warm seed sits near a mode from iteration 0, so most of its
		// run is the final likelihood plateau; the relative stop ends the
		// crawl once improvement is negligible at the likelihood's own
		// scale. Cold fits keep the absolute-only test (bit-identical to
		// the pre-warm-start path) unless the caller sets EM.RelTol.
		warmCfg.RelTol = warmRelTol
	}
	warm, warmErr := em.Fit(data, warmCfg)
	audit := s.warmSeq%s.cfg.WarmAuditEvery == 0
	s.warmSeq++
	healthy := warmErr == nil && isFiniteLL(warm.AvgLogLikelihood)
	if healthy && !audit {
		s.stats.WarmRefits++
		s.tele.warmRefits.Inc()
		s.fitNote = "warm"
		s.tele.reg.Record(telemetry.Event{
			Kind: "warm-refit", Site: s.cfg.SiteID, Model: s.nextModelID,
			Value: warm.AvgLogLikelihood, N: warm.Iterations, Note: "warm",
		})
		return warm, nil
	}

	cold, coldErr := em.Fit(data, cfg)
	if !healthy {
		// Degenerate warm fit (error, NaN or infinite log-likelihood):
		// discard it; the cold result — whatever it is — is the answer.
		s.stats.WarmFallbacks++
		s.tele.warmFalls.Inc()
		s.fitNote = "fallback-cold"
		s.tele.reg.Record(telemetry.Event{
			Kind: "warm-refit", Site: s.cfg.SiteID, Model: s.nextModelID,
			Note: "fallback-cold",
		})
		return cold, coldErr
	}
	if coldErr != nil {
		// Warm succeeded, cold audit failed — keep the warm model.
		s.stats.WarmRefits++
		s.tele.warmRefits.Inc()
		s.fitNote = "warm"
		return warm, nil
	}
	s.stats.WarmAudits++
	s.stats.IterationsSaved += cold.Iterations - warm.Iterations
	s.tele.iterSaved.Add(int64(cold.Iterations - warm.Iterations))
	if cold.AvgLogLikelihood > warm.AvgLogLikelihood {
		s.stats.WarmFallbacks++
		s.tele.warmFalls.Inc()
		s.fitNote = "audit-cold-win"
		s.tele.reg.Record(telemetry.Event{
			Kind: "warm-refit", Site: s.cfg.SiteID, Model: s.nextModelID,
			Value: cold.AvgLogLikelihood, N: cold.Iterations, Note: "audit-cold-win",
		})
		return cold, nil
	}
	s.stats.WarmRefits++
	s.tele.warmRefits.Inc()
	s.fitNote = "audit-warm-win"
	s.tele.reg.Record(telemetry.Event{
		Kind: "warm-refit", Site: s.cfg.SiteID, Model: s.nextModelID,
		Value: warm.AvgLogLikelihood, N: warm.Iterations, Note: "audit-warm-win",
	})
	return warm, nil
}

// isFiniteLL reports whether a fit's log-likelihood is a usable number.
func isFiniteLL(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// retireCurrent moves the current model to the archive and publishes its
// governance span to the event list.
func (s *Site) retireCurrent() {
	m := s.current
	s.current = nil
	if m == nil {
		return
	}
	// The span ends at the previous chunk; the failing chunk belongs to the
	// successor model (Algorithm 1 line 9: <current model ID, start, n-1>).
	if end := s.chunkNum - 1; end >= m.startChunk {
		// Ignore the error: spans are produced in order by construction.
		_ = s.events.Append(events.Entry{ModelID: m.ID, StartChunk: m.startChunk, EndChunk: end})
	}
	s.archive = append(s.archive, m)
}

// reactivate removes archive[i] and installs it as the current model with a
// fresh governance span; the previously current model is retired in its
// place.
func (s *Site) reactivate(i int) {
	cand := s.archive[i]
	s.archive = append(s.archive[:i], s.archive[i+1:]...)
	s.retireCurrent()
	cand.startChunk = s.chunkNum
	s.current = cand
}

// Current returns the active model (nil before the first chunk completes).
func (s *Site) Current() *Model { return s.current }

// Models returns the archived models followed by the current one — the full
// model list, oldest first.
func (s *Site) Models() []*Model {
	out := append([]*Model(nil), s.archive...)
	if s.current != nil {
		out = append(out, s.current)
	}
	return out
}

// Events returns the site's event table.
func (s *Site) Events() *events.List { return s.events }

// ChunksSeen returns the number of completed chunks.
func (s *Site) ChunksSeen() int { return s.chunkNum }

// Stats returns a copy of the work counters.
func (s *Site) Stats() Stats { return s.stats }

// Pending returns records buffered toward the next chunk.
func (s *Site) Pending() int { return s.chunker.Pending() }

// LandmarkMixture composes a single mixture over everything the site has
// seen (landmark window): each model's components enter weighted by the
// model's record counter. Returns nil before any model exists.
func (s *Site) LandmarkMixture() *gaussian.Mixture {
	return composeModels(s.Models())
}

// ModelsInWindow returns the models governing any chunk in
// [startChunk, endChunk] — the Section 7 evolving-analysis query. The
// current model is included if its open span intersects the window.
func (s *Site) ModelsInWindow(startChunk, endChunk int) []*Model {
	byID := make(map[int]*Model, len(s.archive)+1)
	for _, m := range s.Models() {
		byID[m.ID] = m
	}
	seen := make(map[int]bool)
	var out []*Model
	for _, e := range s.events.Query(startChunk, endChunk) {
		if m := byID[e.ModelID]; m != nil && !seen[m.ID] {
			seen[m.ID] = true
			out = append(out, m)
		}
	}
	if s.current != nil && !seen[s.current.ID] &&
		s.current.startChunk <= endChunk && s.chunkNum >= startChunk {
		out = append(out, s.current)
	}
	return out
}

// composeModels flattens a set of models into one mixture, weighting every
// component by its model weight times the model's counter.
func composeModels(models []*Model) *gaussian.Mixture {
	var comps []*gaussian.Component
	var weights []float64
	for _, m := range models {
		for j := 0; j < m.Mixture.K(); j++ {
			comps = append(comps, m.Mixture.Component(j))
			weights = append(weights, m.Mixture.Weight(j)*float64(m.Counter))
		}
	}
	if len(comps) == 0 {
		return nil
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil
	}
	return mix
}

// ModelListBytes estimates the memory the model list occupies — Theorem 3's
// second term, B·K·(d²+d+1) floats: per component one weight, a d-vector
// mean, and a covariance (d(d+1)/2 packed floats; the theorem's d² is the
// unpacked bound).
func (s *Site) ModelListBytes() int {
	d := s.cfg.Dim
	perComp := 8 * (1 + d + d*(d+1)/2)
	var total int
	for _, m := range s.Models() {
		total += m.Mixture.K() * perComp
	}
	return total
}

// BufferBytes estimates the chunk buffer memory — Theorem 3's first term,
// M records of d float64s.
func (s *Site) BufferBytes() int { return s.m * s.cfg.Dim * 8 }
