package site

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cludistream/internal/events"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/telemetry"
)

// testConfig returns a small, fast configuration: 1-d data, chunk size 200.
func testConfig() Config {
	return Config{
		SiteID:    1,
		Dim:       1,
		K:         2,
		Epsilon:   0.1,
		Delta:     0.01,
		CMax:      4,
		Seed:      1,
		ChunkSize: 200,
	}
}

func regime(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func feed(t *testing.T, s *Site, mix *gaussian.Mixture, n int, rng *rand.Rand) []Update {
	t.Helper()
	var ups []Update
	for i := 0; i < n; i++ {
		u, err := s.Observe(mix.Sample(rng))
		if err != nil {
			t.Fatal(err)
		}
		ups = append(ups, u...)
	}
	return ups
}

func TestFirstChunkAlwaysClusters(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ups := feed(t, s, regime(0), 200, rng)
	if len(ups) != 1 || ups[0].Kind != NewModel {
		t.Fatalf("updates after first chunk = %+v", ups)
	}
	if ups[0].Mixture == nil || ups[0].Count != 200 {
		t.Fatalf("first update malformed: %+v", ups[0])
	}
	if s.Current() == nil || s.Current().ID != 1 {
		t.Fatal("no current model after first chunk")
	}
	if s.Stats().EMRuns != 1 {
		t.Fatalf("EMRuns = %d", s.Stats().EMRuns)
	}
}

func TestStationaryStreamStaysSilent(t *testing.T) {
	// Stability (Section 5.3): unchanged distribution ⇒ no communication.
	s, _ := New(testConfig())
	rng := rand.New(rand.NewSource(2))
	mix := regime(0)
	ups := feed(t, s, mix, 200*10, rng)
	if len(ups) != 1 {
		t.Fatalf("stationary stream produced %d updates, want 1", len(ups))
	}
	if got := s.Current().Counter; got != 200*10 {
		t.Fatalf("counter = %d, want 2000", got)
	}
	st := s.Stats()
	if st.EMRuns != 1 {
		t.Fatalf("EM ran %d times on a stationary stream", st.EMRuns)
	}
	if st.Fits != 9 {
		t.Fatalf("Fits = %d, want 9", st.Fits)
	}
	if len(s.Models()) != 1 {
		t.Fatalf("model list has %d entries", len(s.Models()))
	}
}

func TestDistributionChangeTriggersNewModel(t *testing.T) {
	s, _ := New(testConfig())
	rng := rand.New(rand.NewSource(3))
	feed(t, s, regime(0), 200*3, rng)
	ups := feed(t, s, regime(50), 200*3, rng)
	var newModels int
	for _, u := range ups {
		if u.Kind == NewModel {
			newModels++
		}
	}
	if newModels != 1 {
		t.Fatalf("regime change produced %d NewModel updates, want 1", newModels)
	}
	if len(s.Models()) != 2 {
		t.Fatalf("model list = %d, want 2", len(s.Models()))
	}
	// Event list must hold the retired model's span: chunks 1-3.
	ev := s.Events()
	if ev.Len() != 1 {
		t.Fatalf("event list len = %d", ev.Len())
	}
	e := ev.At(0)
	if e.ModelID != 1 || e.StartChunk != 1 || e.EndChunk != 3 {
		t.Fatalf("event = %v, want <model 1, chunks 1-3>", e)
	}
}

func TestMultiTestReactivatesArchivedModel(t *testing.T) {
	// Alternate A, B, A: with c_max ≥ 2 the third phase must re-activate
	// model A via a WeightUpdate, not run EM again.
	s, _ := New(testConfig())
	rng := rand.New(rand.NewSource(4))
	a, b := regime(0), regime(60)
	feed(t, s, a, 200*3, rng)
	feed(t, s, b, 200*3, rng)
	emBefore := s.Stats().EMRuns
	ups := feed(t, s, a, 200*3, rng)

	var weightUps int
	for _, u := range ups {
		if u.Kind == WeightUpdate {
			weightUps++
			if u.ModelID != 1 {
				t.Fatalf("weight update for model %d, want 1", u.ModelID)
			}
			if u.Count != 200 {
				t.Fatalf("weight update count = %d", u.Count)
			}
		}
		if u.Kind == NewModel {
			t.Fatalf("unexpected NewModel update on return to regime A: %+v", u)
		}
	}
	if weightUps == 0 {
		t.Fatal("no weight updates on regime return")
	}
	if s.Stats().EMRuns != emBefore {
		t.Fatal("EM ran despite archived model fitting")
	}
	if s.Current().ID != 1 {
		t.Fatalf("current model = %d, want re-activated 1", s.Current().ID)
	}
	if s.Stats().Reactivated == 0 {
		t.Fatal("Reactivated counter not bumped")
	}
}

func TestCMax1DisablesMultiTest(t *testing.T) {
	cfg := testConfig()
	cfg.CMax = 1
	s, _ := New(cfg)
	rng := rand.New(rand.NewSource(5))
	a, b := regime(0), regime(60)
	feed(t, s, a, 200*2, rng)
	feed(t, s, b, 200*2, rng)
	feed(t, s, a, 200*2, rng)
	// Each regime switch must cost a fresh EM model: 3 models total.
	if got := len(s.Models()); got != 3 {
		t.Fatalf("models = %d, want 3 with c_max=1", got)
	}
	if s.Stats().Reactivated != 0 {
		t.Fatal("reactivation happened with c_max=1")
	}
}

func TestEpsilonControlsSensitivity(t *testing.T) {
	// A small mean shift: a loose ε tolerates it, a tight ε refits.
	mk := func(eps float64) int {
		cfg := testConfig()
		cfg.Epsilon = eps
		s, _ := New(cfg)
		rng := rand.New(rand.NewSource(6))
		feed(t, s, regime(0), 200*3, rng)
		feed(t, s, regime(0.4), 200*3, rng)
		return len(s.Models())
	}
	if loose := mk(5.0); loose != 1 {
		t.Fatalf("loose ε: %d models, want 1", loose)
	}
	if tight := mk(0.01); tight < 2 {
		t.Fatalf("tight ε: %d models, want ≥ 2", tight)
	}
}

func TestChunkSizeFromTheorem(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkSize = 0 // use Theorem 1
	cfg.Dim = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// d=4, ε=0.1, δ=0.01 → M = ⌈-8·ln(0.0199)/0.1⌉ = ⌈313.39⌉ = 314.
	if got := s.ChunkSize(); got != 314 {
		t.Fatalf("ChunkSize = %d, want 314", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, K: 2, Epsilon: 0.1, Delta: 0.01, ChunkSize: 100},
		{Dim: 1, K: 0, Epsilon: 0.1, Delta: 0.01, ChunkSize: 100},
		{Dim: 1, K: 200, Epsilon: 0.1, Delta: 0.01, ChunkSize: 100}, // M < K
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestObserveDimValidation(t *testing.T) {
	s, _ := New(testConfig())
	if _, err := s.Observe(linalg.Vector{1, 2}); err == nil {
		t.Fatal("wrong-dim record accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []*Model {
		s, _ := New(testConfig())
		rng := rand.New(rand.NewSource(7))
		feed(t, s, regime(0), 200*3, rng)
		feed(t, s, regime(40), 200*3, rng)
		return s.Models()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different model counts")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Counter != b[i].Counter {
			t.Fatal("model lists differ")
		}
		for j := 0; j < a[i].Mixture.K(); j++ {
			if !a[i].Mixture.Component(j).Equal(b[i].Mixture.Component(j), 0) {
				t.Fatal("components differ across identical runs")
			}
		}
	}
}

func TestLandmarkMixture(t *testing.T) {
	s, _ := New(testConfig())
	rng := rand.New(rand.NewSource(8))
	feed(t, s, regime(0), 200*4, rng)
	feed(t, s, regime(60), 200*2, rng)
	lm := s.LandmarkMixture()
	if lm == nil {
		t.Fatal("nil landmark mixture")
	}
	if lm.K() != 4 { // 2 models × K=2
		t.Fatalf("landmark K = %d, want 4", lm.K())
	}
	// Model 1 explains 800 records, model 2 explains 400: weight ratio 2:1.
	var w1, w2 float64
	for j := 0; j < lm.K(); j++ {
		if lm.Component(j).Mean()[0] < 30 {
			w1 += lm.Weight(j)
		} else {
			w2 += lm.Weight(j)
		}
	}
	if math.Abs(w1/w2-2) > 1e-9 {
		t.Fatalf("landmark weight ratio = %v, want 2", w1/w2)
	}
	// Landmark mixture should assign decent likelihood to both regimes.
	if ll := lm.AvgLogLikelihood([]linalg.Vector{{-2}, {2}, {58}, {62}}); ll < -5 {
		t.Fatalf("landmark LL = %v", ll)
	}

	empty, _ := New(testConfig())
	if empty.LandmarkMixture() != nil {
		t.Fatal("empty site should have nil landmark mixture")
	}
}

func TestModelsInWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Epsilon = 0.5 // loose enough that each regime maps to exactly one model
	s, _ := New(cfg)
	rng := rand.New(rand.NewSource(9))
	feed(t, s, regime(0), 200*3, rng)   // model 1, chunks 1-3
	feed(t, s, regime(60), 200*3, rng)  // model 2, chunks 4-6
	feed(t, s, regime(-60), 200*3, rng) // model 3, chunks 7-9 (current)

	got := s.ModelsInWindow(2, 2)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("window [2,2] = %v", ids(got))
	}
	got = s.ModelsInWindow(3, 5)
	if len(got) != 2 {
		t.Fatalf("window [3,5] = %v", ids(got))
	}
	got = s.ModelsInWindow(1, 100)
	if len(got) != 3 {
		t.Fatalf("window [1,100] = %v", ids(got))
	}
	// Window entirely in the current model's open span.
	got = s.ModelsInWindow(8, 9)
	if len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("window [8,9] = %v", ids(got))
	}
}

func ids(ms []*Model) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func TestMemoryAccounting(t *testing.T) {
	s, _ := New(testConfig())
	rng := rand.New(rand.NewSource(10))
	if s.BufferBytes() != 200*1*8 {
		t.Fatalf("BufferBytes = %d", s.BufferBytes())
	}
	feed(t, s, regime(0), 200*2, rng)
	one := s.ModelListBytes()
	feed(t, s, regime(60), 200*2, rng)
	two := s.ModelListBytes()
	if two != 2*one {
		t.Fatalf("model list bytes %d -> %d, want doubling", one, two)
	}
	// d=1, K=2: per component 1+1+1 floats = 24 bytes, model = 48.
	if one != 48 {
		t.Fatalf("one model = %d bytes, want 48", one)
	}
}

func TestSharpTestVariant(t *testing.T) {
	cfg := testConfig()
	cfg.SharpTest = true
	s, _ := New(cfg)
	rng := rand.New(rand.NewSource(11))
	ups := feed(t, s, regime(0), 200*5, rng)
	if len(ups) != 1 {
		t.Fatalf("sharp test: %d updates on stationary stream", len(ups))
	}
	feed(t, s, regime(80), 200*2, rng)
	if len(s.Models()) != 2 {
		t.Fatalf("sharp test missed a regime change: %d models", len(s.Models()))
	}
}

func TestEmitFitWeightUpdates(t *testing.T) {
	cfg := testConfig()
	cfg.EmitFitWeightUpdates = true
	s, _ := New(cfg)
	rng := rand.New(rand.NewSource(13))
	ups := feed(t, s, regime(0), 200*4, rng)
	// 1 NewModel + 3 WeightUpdates for the fitting chunks.
	var newModels, weightUps int
	for _, u := range ups {
		switch u.Kind {
		case NewModel:
			newModels++
		case WeightUpdate:
			weightUps++
			if u.ModelID != 1 || u.Count != 200 {
				t.Fatalf("weight update = %+v", u)
			}
		}
	}
	if newModels != 1 || weightUps != 3 {
		t.Fatalf("newModels=%d weightUps=%d, want 1 and 3", newModels, weightUps)
	}
}

func TestUseSMEMSite(t *testing.T) {
	cfg := testConfig()
	cfg.K = 3 // SMEM needs K ≥ 3
	cfg.UseSMEM = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	ups := feed(t, s, regime(0), 200*3, rng)
	if len(ups) == 0 || s.Current() == nil {
		t.Fatal("SMEM site produced no model")
	}
	if s.Current().Mixture.K() != 3 {
		t.Fatalf("SMEM model K = %d", s.Current().Mixture.K())
	}
	// The model must explain the regime well.
	if ll := s.Current().Mixture.AvgLogLikelihood([]linalg.Vector{{-2}, {2}}); ll < -4 {
		t.Fatalf("SMEM model LL = %v", ll)
	}
}

func TestAutoKSite(t *testing.T) {
	cfg := testConfig()
	cfg.AutoKMax = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	// regime() is bimodal: BIC should pick K=2 regardless of cfg.K.
	feed(t, s, regime(0), 200*2, rng)
	if s.Current() == nil {
		t.Fatal("no model")
	}
	if got := s.Current().Mixture.K(); got != 2 {
		t.Fatalf("auto-K chose %d on bimodal data, want 2", got)
	}
}

func TestIncompleteRecordsEndToEnd(t *testing.T) {
	// 20% of attributes missing: the site must still learn the regime and
	// detect the change — the paper's "incomplete data records" claim.
	cfg := testConfig()
	cfg.Dim = 2
	cfg.Epsilon = 0.5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	blank := func(x linalg.Vector) linalg.Vector {
		if rng.Float64() < 0.4 { // 40% of records lose one attribute
			x[rng.Intn(2)] = math.NaN()
		}
		return x
	}
	regime2d := func(mean float64) *gaussian.Mixture {
		return gaussian.MustMixture(
			[]float64{0.5, 0.5},
			[]*gaussian.Component{
				gaussian.Spherical(linalg.Vector{mean - 2, mean}, 0.5),
				gaussian.Spherical(linalg.Vector{mean + 2, mean}, 0.5),
			})
	}
	for i := 0; i < 200*3; i++ {
		if _, err := s.Observe(blank(regime2d(0).Sample(rng))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Current() == nil {
		t.Fatal("no model learned from incomplete stream")
	}
	// Model quality on complete probes.
	probes := []linalg.Vector{{-2, 0}, {2, 0}}
	if ll := s.Current().Mixture.AvgLogLikelihood(probes); ll < -5 {
		t.Fatalf("incomplete-data model LL = %v", ll)
	}
	// Regime change must still be detected.
	for i := 0; i < 200*2; i++ {
		if _, err := s.Observe(blank(regime2d(50).Sample(rng))); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Models()) < 2 {
		t.Fatal("regime change missed on incomplete stream")
	}
}

func TestNoisyStreamStability(t *testing.T) {
	// 5% uniform noise (the Figure 4(d) scenario) must not fragment the
	// model list: EM's mixture absorbs the noise.
	cfg := testConfig()
	cfg.Epsilon = 0.35 // noise inflates LL variance; keep the test honest
	s, _ := New(cfg)
	rng := rand.New(rand.NewSource(12))
	mix := regime(0)
	for i := 0; i < 200*8; i++ {
		var x linalg.Vector
		if rng.Float64() < 0.05 {
			x = linalg.Vector{rng.Float64()*20 - 10}
		} else {
			x = mix.Sample(rng)
		}
		if _, err := s.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Models()); got > 2 {
		t.Fatalf("noisy stationary stream fragmented into %d models", got)
	}
}

// driftMix builds the warm-start drift workload: three overlapping 4-d
// spherical components. Overlap matters — it is what makes cold k-means++
// EM iterate long enough for a nearby seed to pay; on well-separated
// clusters cold EM converges in 2-3 iterations and there is nothing to
// save.
func driftMix(mean float64) *gaussian.Mixture {
	comps := make([]*gaussian.Component, 3)
	ws := []float64{0.5, 0.3, 0.2}
	for j := range comps {
		mu := linalg.NewVector(4)
		for i := range mu {
			mu[i] = mean + float64(j)*2 + 0.3*float64(i)
		}
		comps[j] = gaussian.Spherical(mu, 1)
	}
	return gaussian.MustMixture(ws, comps)
}

// driftSites runs a warm-start site and a cold-start site over the same
// gradual-drift stream (the mean moves 0.3 per chunk — a J_fit margin past
// ε but inside the WarmMargin gate, so refits are warm-eligible) and
// returns both.
func driftSites(t *testing.T, warmAuditEvery int) (warm, cold *Site) {
	t.Helper()
	mk := func(ws string) *Site {
		cfg := Config{
			SiteID:    1,
			Dim:       4,
			K:         3,
			Epsilon:   0.1,
			Delta:     0.01,
			CMax:      4,
			Seed:      1,
			ChunkSize: 300,
		}
		cfg.WarmStart = ws
		cfg.WarmAuditEvery = warmAuditEvery
		cfg.Telemetry = telemetry.NewRegistry()
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	warm, cold = mk(WarmStartOn), mk(WarmStartCold)
	for _, s := range []*Site{warm, cold} {
		rng := rand.New(rand.NewSource(9))
		for d := 0; d <= 14; d++ {
			feed(t, s, driftMix(0.3*float64(d)), 300, rng)
		}
		// Hold the final regime so both sites' last refit saw the same
		// distribution regardless of how their refit schedules diverged —
		// the holdout comparison below is then model quality, not
		// recency luck.
		for i := 0; i < 3; i++ {
			feed(t, s, driftMix(0.3*14), 300, rng)
		}
	}
	return warm, cold
}

func TestWarmStartReducesIterations(t *testing.T) {
	warm, cold := driftSites(t, 0) // default audit cadence (8)
	ws, cs := warm.Stats(), cold.Stats()
	if ws.WarmRefits == 0 {
		t.Fatalf("drift stream triggered no warm refits: %+v", ws)
	}
	if cs.WarmRefits != 0 || cs.ColdRefits == 0 {
		t.Fatalf("cold site ran warm refits: %+v", cs)
	}
	warmIters := warm.cfg.Telemetry.Counter("em.iterations").Value()
	coldIters := cold.cfg.Telemetry.Counter("em.iterations").Value()
	if warmIters >= coldIters {
		t.Fatalf("warm start used %d EM iterations, cold start %d", warmIters, coldIters)
	}
	t.Logf("EM iterations: warm=%d cold=%d (refits: %d warm, %d audited, %d fellback)",
		warmIters, coldIters, ws.WarmRefits, ws.WarmAudits, ws.WarmFallbacks)
}

func TestWarmStartQualityNotDegraded(t *testing.T) {
	// With WarmAuditEvery=1 every refit keeps the better of warm and cold,
	// so no single accepted fit can trail the cold fit of its own chunk.
	// End to end the two sites' refit *schedules* still diverge (different
	// models pass different J_fit tests), so their final models are fits
	// of different chunks; the holdout comparison is therefore bounded by
	// the algorithm's own resolution ε — both final models pass the J_fit
	// test on the held final regime, which is CluDistream's definition of
	// "the same distribution".
	warm, cold := driftSites(t, 1)
	holdout := driftMix(0.3*14).SampleN(rand.New(rand.NewSource(99)), 2000)
	warmLL := warm.Current().Mixture.AvgLogLikelihood(holdout)
	coldLL := cold.Current().Mixture.AvgLogLikelihood(holdout)
	const eps = 0.1 // the sites' FitEps
	if warmLL < coldLL-eps {
		t.Fatalf("warm-start holdout log-likelihood %v degraded vs cold %v beyond ε", warmLL, coldLL)
	}
	if got := warm.Stats().WarmAudits; got == 0 {
		t.Fatalf("WarmAuditEvery=1 recorded no audits: %+v", warm.Stats())
	}
	t.Logf("holdout avg LL: warm=%v cold=%v", warmLL, coldLL)
}

func TestWarmMarginGatesNovelRegimes(t *testing.T) {
	// Jumps between far-apart regimes: every tested model is hundreds of
	// nats off, so the WarmMargin gate must force cold refits even with
	// warm start on — warm seeding is a drift optimization only.
	cfg := testConfig()
	cfg.Telemetry = telemetry.NewRegistry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i, mean := range []float64{0, 60, 120, 180} {
		feed(t, s, regime(mean), 200*2, rng)
		if i == 0 {
			continue
		}
	}
	st := s.Stats()
	if st.WarmRefits != 0 || st.WarmFallbacks != 0 {
		t.Fatalf("novel-regime jumps produced warm refits: %+v", st)
	}
	// ColdRefits counts the gated refits plus the seedless first chunk.
	if st.ColdRefits != 4 {
		t.Fatalf("ColdRefits = %d, want 4", st.ColdRefits)
	}
	if got := cfg.Telemetry.Counter("site.cold_refits").Value(); got != 4 {
		t.Fatalf("site.cold_refits counter = %d", got)
	}
}

func TestWarmStartConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.WarmStart = "lukewarm"
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid WarmStart value accepted")
	}
}

// TestWarmStartColdBitIdenticalPrePR pins the WarmStartCold escape hatch
// (and the recycled-chunk ingest path) bit-identical to the code base
// before warm starts existed: the golden value was produced by running
// this exact stream through the pre-warm-start site implementation.
func TestWarmStartColdBitIdenticalPrePR(t *testing.T) {
	cfg := testConfig()
	cfg.WarmStart = WarmStartCold
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	h := fnv.New64a()
	wf := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	wi := func(v int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	digest := func(mix *gaussian.Mixture, n int) {
		for i := 0; i < n; i++ {
			ups, err := s.Observe(mix.Sample(rng))
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range ups {
				wi(int(u.Kind))
				wi(u.ModelID)
				wi(u.Count)
				if u.Mixture == nil {
					continue
				}
				m := u.Mixture
				for j := 0; j < m.K(); j++ {
					wf(m.Weight(j))
					c := m.Component(j)
					for _, v := range c.Mean() {
						wf(v)
					}
					cov := c.Cov()
					for r := 0; r < len(c.Mean()); r++ {
						for q := 0; q < len(c.Mean()); q++ {
							wf(cov.At(r, q))
						}
					}
				}
			}
		}
	}
	digest(regime(0), 600)
	digest(regime(60), 600)
	for d := 1; d <= 6; d++ {
		digest(regime(60+0.5*float64(d)), 200)
	}
	digest(regime(0), 400)
	const golden uint64 = 0x8ebee668420803af // pre-warm-start site on this stream
	if got := h.Sum64(); got != golden {
		t.Fatalf("WarmStartCold update stream fingerprint = %#x, want %#x", got, golden)
	}
}

func TestSiteSteadyStateZeroAlloc(t *testing.T) {
	// The paper's common case: a stationary stream where every chunk fits
	// the current model. With the chunker's recycle protocol and the
	// pooled batch scorer, Observe must not allocate at all per record.
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	pool := regime(0).SampleN(rng, 1000)
	for _, x := range pool {
		if _, err := s.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		ups, err := s.Observe(pool[i%len(pool)])
		if err != nil {
			t.Fatal(err)
		}
		if ups != nil {
			t.Fatalf("unexpected refit in steady state: %+v", ups)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Observe allocates %v per record, want 0", avg)
	}
}

// kRegime builds a k-component 2-d mixture with deterministic means on a
// circle of the given radius — enough components to engage the pruned
// scorer (which needs K ≥ 2·PruneTopM).
func kRegime(k int, radius, phase float64) *gaussian.Mixture {
	comps := make([]*gaussian.Component, k)
	weights := make([]float64, k)
	for j := 0; j < k; j++ {
		a := phase + 2*math.Pi*float64(j)/float64(k)
		comps[j] = gaussian.Spherical(linalg.Vector{radius * math.Cos(a), radius * math.Sin(a)}, 0.4)
		weights[j] = 1 + float64(j%3)
	}
	return gaussian.MustMixture(weights, comps)
}

// replayStream feeds a pre-generated record stream through a fresh site and
// returns the FNV fingerprint of its update stream, the event table, and
// the final stats — the full observable behaviour of Algorithm 1.
func replayStream(t *testing.T, cfg Config, stream []linalg.Vector) (uint64, []events.Entry, Stats) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	wf := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	wi := func(v int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	for _, x := range stream {
		ups, err := s.Observe(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ups {
			wi(int(u.Kind))
			wi(u.ModelID)
			wi(u.Count)
			if u.Mixture == nil {
				continue
			}
			for j := 0; j < u.Mixture.K(); j++ {
				wf(u.Mixture.Weight(j))
				c := u.Mixture.Component(j)
				for _, v := range c.Mean() {
					wf(v)
				}
				cov := c.Cov()
				for r := 0; r < len(c.Mean()); r++ {
					for q := 0; q < len(c.Mean()); q++ {
						wf(cov.At(r, q))
					}
				}
			}
		}
	}
	return h.Sum64(), s.Events().All(), s.Stats()
}

// prunedParityStream builds a drifting K=8 stream that exercises fits,
// refits, reactivations and near-threshold chunks.
func prunedParityStream(seed int64, chunks int) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	var stream []linalg.Vector
	phases := []float64{0, 0.03, 0.8, 0, 1.7, 0.8}
	for c := 0; c < chunks; c++ {
		mix := kRegime(8, 8, phases[c%len(phases)])
		stream = append(stream, mix.SampleN(rng, 160)...)
	}
	return stream
}

// prunedCfg is the fast path: pruning and shared stats at their defaults.
func prunedCfg() Config {
	return Config{
		SiteID: 1, Dim: 2, K: 8, Epsilon: 0.5, Delta: 0.01,
		CMax: 4, Seed: 7, ChunkSize: 160,
	}
}

// exactCfg is the reference path: pruning disabled, per-probe re-scans.
func exactCfg() Config {
	c := prunedCfg()
	c.PruneTopM = -1
	c.SharedChunkStats = SharedStatsOff
	return c
}

// TestPrunedPathBitIdenticalToExact pins the tentpole contract: with
// pruning and shared chunk stats on (the defaults), the site's update
// stream, event table and decision counters are bit-identical to the exact
// reference path — and the fast path actually took pruned shortcuts.
func TestPrunedPathBitIdenticalToExact(t *testing.T) {
	stream := prunedParityStream(99, 24)
	fastFP, fastEv, fastSt := replayStream(t, prunedCfg(), stream)
	refFP, refEv, refSt := replayStream(t, exactCfg(), stream)
	if fastFP != refFP {
		t.Fatalf("pruned update stream fingerprint %#x != exact %#x", fastFP, refFP)
	}
	if len(fastEv) != len(refEv) {
		t.Fatalf("event tables differ: %d vs %d entries", len(fastEv), len(refEv))
	}
	for i := range fastEv {
		if fastEv[i] != refEv[i] {
			t.Fatalf("event %d: pruned %+v != exact %+v", i, fastEv[i], refEv[i])
		}
	}
	for name, pair := range map[string][2]int{
		"Fits":        {fastSt.Fits, refSt.Fits},
		"Refits":      {fastSt.Refits, refSt.Refits},
		"Reactivated": {fastSt.Reactivated, refSt.Reactivated},
		"Tests":       {fastSt.Tests, refSt.Tests},
		"EMRuns":      {fastSt.EMRuns, refSt.EMRuns},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: pruned %d != exact %d", name, pair[0], pair[1])
		}
	}
	if fastSt.PruneHits == 0 {
		t.Error("pruned path never used a bound verdict — parity test is vacuous")
	}
	if refSt.PruneHits != 0 || refSt.StatCacheHits != 0 {
		t.Errorf("exact path recorded fast-path work: %+v", refSt)
	}
}

// TestPrunedParityQuick is the testing/quick property: across random
// regimes (random seeds, drift schedules and component counts) the pruned
// + shared-stats site produces identical fit/refit event tables and update
// streams to the exact reference path.
func TestPrunedParityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick property test")
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 8 + 2*rng.Intn(3) // 8, 10, 12 — all engage pruning at topM=4
		chunks := 8 + rng.Intn(6)
		var stream []linalg.Vector
		for c := 0; c < chunks; c++ {
			phase := math.Abs(rng.NormFloat64()) * 0.6
			stream = append(stream, kRegime(k, 6+2*rng.Float64(), phase).SampleN(rng, 160)...)
		}
		fast := prunedCfg()
		fast.K = k
		fast.Seed = seed
		ref := exactCfg()
		ref.K = k
		ref.Seed = seed
		fastFP, fastEv, _ := replayStream(t, fast, stream)
		refFP, refEv, _ := replayStream(t, ref, stream)
		if fastFP != refFP || len(fastEv) != len(refEv) {
			return false
		}
		for i := range fastEv {
			if fastEv[i] != refEv[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 8,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63n(1 << 30))
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryDoesNotPerturbPrunedPath asserts bit-identical output with
// telemetry on and off while the pruned fast path is active.
func TestTelemetryDoesNotPerturbPrunedPath(t *testing.T) {
	stream := prunedParityStream(123, 12)
	plainFP, _, plainSt := replayStream(t, prunedCfg(), stream)
	teleCfg := prunedCfg()
	reg := telemetry.NewRegistry()
	teleCfg.Telemetry = reg
	teleFP, _, teleSt := replayStream(t, teleCfg, stream)
	if plainFP != teleFP {
		t.Fatalf("telemetry changed the update stream: %#x != %#x", teleFP, plainFP)
	}
	if plainSt != teleSt {
		t.Fatalf("telemetry changed stats: %+v != %+v", teleSt, plainSt)
	}
	if teleSt.PruneHits == 0 {
		t.Error("stream never hit the pruned path")
	}
	// Counters mirror the stats the site already kept.
	counters := reg.Snapshot().Counters
	if got := counters["site.prune_hits"]; got != int64(teleSt.PruneHits) {
		t.Errorf("site.prune_hits = %d, stats say %d", got, teleSt.PruneHits)
	}
	if got := counters["site.prune_fallbacks"]; got != int64(teleSt.PruneFallbacks) {
		t.Errorf("site.prune_fallbacks = %d, stats say %d", got, teleSt.PruneFallbacks)
	}
	if got := counters["site.stat_cache_hits"]; got != int64(teleSt.StatCacheHits) {
		t.Errorf("site.stat_cache_hits = %d, stats say %d", got, teleSt.StatCacheHits)
	}
	if got := counters["site.stat_cache_misses"]; got != int64(teleSt.StatCacheMisses) {
		t.Errorf("site.stat_cache_misses = %d, stats say %d", got, teleSt.StatCacheMisses)
	}
}

// TestSiteSteadyStatePrunedZeroAlloc: the zero-alloc ingest contract must
// survive with the pruned scorer engaged (K=16 current model, bound
// verdicts on every chunk).
func TestSiteSteadyStatePrunedZeroAlloc(t *testing.T) {
	cfg := prunedCfg()
	cfg.K = 16
	// A K=16 EM fit on 160-record chunks fluctuates chunk to chunk; a
	// generous ε keeps the stream in pure test mode so the measurement
	// isolates the pruned scoring path.
	cfg.FitEps = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	pool := kRegime(16, 10, 0).SampleN(rng, 1600)
	for _, x := range pool {
		if _, err := s.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Refits != 1 {
		t.Fatalf("warmup refit count = %d, want 1 (stationary)", s.Stats().Refits)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		ups, err := s.Observe(pool[i%len(pool)])
		if err != nil {
			t.Fatal(err)
		}
		if ups != nil {
			t.Fatalf("unexpected refit in steady state: %+v", ups)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("pruned steady-state Observe allocates %v per record, want 0", avg)
	}
	if s.Stats().PruneHits == 0 {
		t.Error("steady state never used the pruned verdict")
	}
}
