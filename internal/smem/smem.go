// Package smem implements the split-and-merge EM algorithm of Ueda,
// Nakano, Ghahramani & Hinton (Neural Computation 12(9), 2000 — reference
// [23] of the paper). SMEM escapes the local optima plain EM converges to
// by repeatedly proposing simultaneous merge (two redundant components →
// one) and split (one underfitting component → two) moves, re-running EM,
// and keeping the result only when the likelihood improves.
//
// CluDistream's coordinator borrows SMEM's J_merge criterion (replacing it
// with the transmit-free M_merge); this package provides the genuine
// article so the repository can both validate that replacement (Figure 1)
// and offer a stronger local-model fitter for sites that can afford it.
package smem

import (
	"fmt"
	"math"
	"sort"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// Config parameterizes a SMEM fit.
type Config struct {
	// EM is the base EM configuration (K, tolerance, seed, ...).
	EM em.Config
	// MaxCandidates is how many (merge i,j + split k) triples are tried per
	// round, in criterion order (Ueda et al. use 5).
	MaxCandidates int
	// MaxRounds bounds the number of accepted-move rounds (default 3).
	MaxRounds int
	// MinGain is the average log-likelihood improvement required to accept
	// a move (default 1e-4).
	MinGain float64
}

func (c Config) withDefaults() Config {
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 5
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 3
	}
	if c.MinGain <= 0 {
		c.MinGain = 1e-4
	}
	return c
}

// Result reports a SMEM fit.
type Result struct {
	Mixture          *gaussian.Mixture
	AvgLogLikelihood float64
	// EMRuns counts inner EM invocations (1 base + 1 per candidate tried).
	EMRuns int
	// AcceptedMoves counts split-merge proposals that improved the model.
	AcceptedMoves int
}

// Fit runs EM followed by split-and-merge refinement. It needs K ≥ 3: a
// move merges two components and splits a third.
func Fit(data []linalg.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.EM.K < 3 {
		return nil, fmt.Errorf("smem: K = %d, need ≥ 3 for split-merge moves", cfg.EM.K)
	}
	base, err := em.Fit(data, cfg.EM)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Mixture:          base.Mixture,
		AvgLogLikelihood: base.Mixture.AvgLogLikelihood(data),
		EMRuns:           1,
	}

	for round := 0; round < cfg.MaxRounds; round++ {
		improved := false
		for _, cand := range candidates(res.Mixture, data, cfg.MaxCandidates) {
			proposal, err := applyMove(res.Mixture, data, cand)
			if err != nil {
				continue
			}
			refit := cfg.EM
			refit.InitModel = proposal
			refined, err := em.Fit(data, refit)
			res.EMRuns++
			if err != nil {
				continue
			}
			ll := refined.Mixture.AvgLogLikelihood(data)
			if ll > res.AvgLogLikelihood+cfg.MinGain {
				res.Mixture = refined.Mixture
				res.AvgLogLikelihood = ll
				res.AcceptedMoves++
				improved = true
				break // re-rank candidates against the new model
			}
		}
		if !improved {
			break
		}
	}
	return res, nil
}

// move is one (merge i,j; split k) proposal.
type move struct {
	i, j, k int
}

// candidates ranks proposals: pairs by descending J_merge, and for each
// pair, split components by descending split score (how poorly the
// component fits the data it claims).
func candidates(m *gaussian.Mixture, data []linalg.Vector, max int) []move {
	k := m.K()
	type pair struct {
		i, j int
		jm   float64
	}
	var pairs []pair
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, pair{i, j, gaussian.JMerge(m, i, j, data)})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].jm > pairs[b].jm })

	scores := splitScores(m, data)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })

	var out []move
	for _, p := range pairs {
		for _, s := range order {
			if s == p.i || s == p.j {
				continue
			}
			out = append(out, move{i: p.i, j: p.j, k: s})
			break // one split candidate per merge pair (Ueda's ordering)
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// splitScores measures local misfit per component: the responsibility-
// weighted KL surrogate Σ_x Pr(k|x)·(log f̂(x) − log p(x|k)) reduces, for a
// fixed kernel-free implementation, to how much worse the component
// explains its own points than the full mixture does. High score = the
// component is covering structure it cannot represent = split candidate.
func splitScores(m *gaussian.Mixture, data []linalg.Vector) []float64 {
	k := m.K()
	post := make([]float64, k)
	num := make([]float64, k)
	den := make([]float64, k)
	for _, x := range data {
		m.PosteriorInto(x, post)
		for j := 0; j < k; j++ {
			if post[j] <= 0 {
				continue
			}
			num[j] += post[j] * (m.LogPDF(x) - m.Component(j).LogProb(x))
			den[j] += post[j]
		}
	}
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		if den[j] > 0 {
			out[j] = num[j] / den[j]
		} else {
			out[j] = math.Inf(1) // dead component: always worth splitting
		}
	}
	return out
}

// applyMove builds the proposal mixture: components i and j moment-merged,
// component k split along its principal axis.
func applyMove(m *gaussian.Mixture, data []linalg.Vector, mv move) (*gaussian.Mixture, error) {
	d := m.Dim()
	wMerged, mean, cov := gaussian.MomentMerge(
		m.Weight(mv.i), m.Component(mv.i),
		m.Weight(mv.j), m.Component(mv.j))
	merged, err := gaussian.NewComponent(mean, cov, 0)
	if err != nil {
		return nil, err
	}

	// Split k: displace the two children ±½√λ along the dominant
	// eigenvector, halve the weight, shrink the covariance.
	ck := m.Component(mv.k)
	vals, vecs := linalg.JacobiEigen(ck.Cov())
	best := 0
	for idx := 1; idx < d; idx++ {
		if vals[idx] > vals[best] {
			best = idx
		}
	}
	axis := linalg.NewVector(d)
	for r := 0; r < d; r++ {
		axis[r] = vecs[r*d+best]
	}
	step := 0.5 * math.Sqrt(math.Max(vals[best], 1e-12))
	childCov := ck.Cov().Clone()
	childCov.ScaleInPlace(0.5)
	mk := ck.Mean()
	c1, err := gaussian.NewComponent(mk.Add(axis.Scale(step)), childCov, 0)
	if err != nil {
		return nil, err
	}
	c2, err := gaussian.NewComponent(mk.Add(axis.Scale(-step)), childCov, 0)
	if err != nil {
		return nil, err
	}

	var comps []*gaussian.Component
	var weights []float64
	for idx := 0; idx < m.K(); idx++ {
		switch idx {
		case mv.i:
			comps = append(comps, merged)
			weights = append(weights, wMerged)
		case mv.j:
			// replaced by one of k's children to keep K constant
			comps = append(comps, c1)
			weights = append(weights, m.Weight(mv.k)/2)
		case mv.k:
			comps = append(comps, c2)
			weights = append(weights, m.Weight(mv.k)/2)
		default:
			comps = append(comps, m.Component(idx))
			weights = append(weights, m.Weight(idx))
		}
	}
	return gaussian.NewMixture(weights, comps)
}
