package smem

import (
	"math/rand"
	"testing"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// trapData builds a data set engineered to trap plain EM: three tight,
// well-separated clusters but a warm start that parks two components on
// one cluster and one component across the other two. Plain EM cannot
// escape; SMEM's merge+split move can.
func trapData(rng *rand.Rand) ([]linalg.Vector, []linalg.Vector) {
	var data []linalg.Vector
	centers := []linalg.Vector{{-10, 0}, {10, 0}, {10, 8}}
	for _, c := range centers {
		comp := gaussian.Spherical(c, 0.3)
		for i := 0; i < 400; i++ {
			data = append(data, comp.Sample(rng))
		}
	}
	// The trap: two means on cluster 0, one mean between clusters 1 and 2.
	trap := []linalg.Vector{{-10.5, 0}, {-9.5, 0}, {10, 4}}
	return data, trap
}

func TestSMEMEscapesLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data, trap := trapData(rng)

	base := em.Config{K: 3, Seed: 1, MaxIter: 100, Tol: 1e-6, InitMeans: trap}
	plain, err := em.Fit(data, base)
	if err != nil {
		t.Fatal(err)
	}
	plainLL := plain.Mixture.AvgLogLikelihood(data)

	res, err := Fit(data, Config{EM: base})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedMoves == 0 {
		t.Fatal("SMEM accepted no moves on trapped initialization")
	}
	if res.AvgLogLikelihood <= plainLL+0.1 {
		t.Fatalf("SMEM LL %v did not beat trapped EM %v", res.AvgLogLikelihood, plainLL)
	}
	// The three true centers must each be recovered.
	for _, c := range []linalg.Vector{{-10, 0}, {10, 0}, {10, 8}} {
		best := 1e18
		for j := 0; j < 3; j++ {
			if d := c.DistSq(res.Mixture.Component(j).Mean()); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Fatalf("center %v not recovered (nearest dist² %v)", c, best)
		}
	}
}

func TestSMEMNeverWorseThanEM(t *testing.T) {
	// On easy data (good init), SMEM must at minimum keep plain EM's
	// solution: moves that do not improve are rejected.
	rng := rand.New(rand.NewSource(12))
	mix := gaussian.MustMixture(
		[]float64{1, 1, 1},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{-8}, 1),
			gaussian.Spherical(linalg.Vector{0}, 1),
			gaussian.Spherical(linalg.Vector{8}, 1),
		})
	data := mix.SampleN(rng, 1500)
	base := em.Config{K: 3, Seed: 1, MaxIter: 100, Tol: 1e-6}
	plain, err := em.Fit(data, base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(data, Config{EM: base})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLogLikelihood < plain.Mixture.AvgLogLikelihood(data)-1e-9 {
		t.Fatalf("SMEM %v below plain EM %v", res.AvgLogLikelihood, plain.Mixture.AvgLogLikelihood(data))
	}
}

func TestSMEMValidation(t *testing.T) {
	data := gaussian.Spherical(linalg.Vector{0}, 1).Sample(rand.New(rand.NewSource(1)))
	if _, err := Fit([]linalg.Vector{data}, Config{EM: em.Config{K: 2}}); err == nil {
		t.Fatal("K=2 accepted (needs ≥3)")
	}
	if _, err := Fit(nil, Config{EM: em.Config{K: 3}}); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestSMEMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data, trap := trapData(rng)
	cfg := Config{EM: em.Config{K: 3, Seed: 2, MaxIter: 60, Tol: 1e-5, InitMeans: trap}}
	a, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLogLikelihood != b.AvgLogLikelihood || a.AcceptedMoves != b.AcceptedMoves {
		t.Fatal("SMEM not deterministic for fixed seed")
	}
}

func sampleN(c *gaussian.Component, seed int64, n int) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = c.Sample(rng)
	}
	return out
}

func TestSplitScoresFlagMisfit(t *testing.T) {
	// A mixture where component 0 covers two real clusters must give
	// component 0 the top split score.
	data := append(
		sampleN(gaussian.Spherical(linalg.Vector{-5}, 0.3), 3, 300),
		sampleN(gaussian.Spherical(linalg.Vector{5}, 0.3), 4, 300)...)
	data = append(data, sampleN(gaussian.Spherical(linalg.Vector{40}, 0.3), 5, 300)...)

	wide := gaussian.MustComponent(linalg.Vector{0}, linalg.Diagonal(linalg.Vector{30}))
	good := gaussian.Spherical(linalg.Vector{40}, 0.3)
	third := gaussian.Spherical(linalg.Vector{100}, 1) // claims nothing
	m := gaussian.MustMixture([]float64{2, 1, 0.01}, []*gaussian.Component{wide, good, third})

	scores := splitScores(m, data)
	if !(scores[0] > scores[1]) {
		t.Fatalf("misfit component not flagged: scores = %v", scores)
	}
}
