package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cludistream/internal/linalg"
)

// WriteCSV writes records as comma-separated float64 rows. It is the
// dataset interchange format of cmd/datagen.
func WriteCSV(w io.Writer, data []linalg.Vector) error {
	bw := bufio.NewWriter(w)
	for _, x := range data {
		for i, v := range x {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses rows written by WriteCSV. All rows must share one
// dimensionality; blank lines are skipped.
func ReadCSV(r io.Reader) ([]linalg.Vector, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []linalg.Vector
	line := 0
	dim := -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if dim == -1 {
			dim = len(fields)
		} else if len(fields) != dim {
			return nil, fmt.Errorf("stream: line %d has %d fields, want %d", line, len(fields), dim)
		}
		x := linalg.NewVector(len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d field %d: %w", line, i+1, err)
			}
			x[i] = v
		}
		out = append(out, x)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Normalize min-max scales each attribute of data into [0,1] in place and
// returns the per-attribute (min, max) used — the paper's NFD
// preprocessing. Constant attributes map to 0.
func Normalize(data []linalg.Vector) (mins, maxs linalg.Vector) {
	if len(data) == 0 {
		return nil, nil
	}
	d := len(data[0])
	mins = data[0].Clone()
	maxs = data[0].Clone()
	for _, x := range data[1:] {
		for i := 0; i < d; i++ {
			if x[i] < mins[i] {
				mins[i] = x[i]
			}
			if x[i] > maxs[i] {
				maxs[i] = x[i]
			}
		}
	}
	for _, x := range data {
		for i := 0; i < d; i++ {
			if span := maxs[i] - mins[i]; span > 0 {
				x[i] = (x[i] - mins[i]) / span
			} else {
				x[i] = 0
			}
		}
	}
	return mins, maxs
}
