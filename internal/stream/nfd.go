package stream

import (
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/linalg"
)

// NFDConfig parameterizes the NFD-like net-flow generator.
//
// The paper's NFD data set (net-flow records from Shanghai Telecom) is
// proprietary; this generator is the documented substitute (DESIGN.md §2).
// It reproduces the properties the experiments actually exercise: six
// attributes — source host, destination host, source TCP port, destination
// TCP port, packet count, byte count — with Zipf-distributed hosts,
// Pareto-tailed volumes (per Simon's power-law model the paper cites for
// Theorem 4), a small set of service regimes that switch over time with
// probability Pd, and per-attribute normalization to [0,1] ("we normalize
// each attribute to reduce the data range effect").
type NFDConfig struct {
	// NumHosts is the host-address space size (default 1024).
	NumHosts int
	// Pd is the probability of a new traffic regime at each boundary
	// (default 0.1).
	Pd float64
	// RegimeLen is records between regime-change draws (default 2000).
	RegimeLen int
	// Jitter is the standard deviation of Gaussian measurement noise added
	// to every normalized attribute (default 0.02, negative disables). It
	// keeps the host/port attributes continuous the way aggregated real
	// net-flow records are; without it those attributes are near-discrete
	// and Gaussian models degenerate to spikes.
	Jitter float64
	// Seed makes the stream reproducible.
	Seed int64
}

func (c NFDConfig) withDefaults() NFDConfig {
	if c.NumHosts <= 1 {
		c.NumHosts = 1024
	}
	if c.RegimeLen <= 0 {
		c.RegimeLen = 2000
	}
	if c.Pd == 0 {
		c.Pd = 0.1
	}
	if c.Jitter == 0 {
		c.Jitter = 0.02
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	return c
}

// NFDDim is the net-flow record dimensionality.
const NFDDim = 6

// wellKnownServices are destination ports a regime concentrates on.
var wellKnownServices = []int{80, 443, 25, 53, 110, 8080, 21, 22, 6881, 3306}

// nfdRegime describes one traffic pattern: a dominant service, a hot subset
// of destination hosts, and volume-distribution parameters.
type nfdRegime struct {
	service      int     // dominant destination port
	hostBias     int     // offset into the host space for hot destinations
	paretoAlpha  float64 // packet-count tail index
	paretoMin    float64 // minimum packets per flow
	bytesPerPkt  float64 // mean payload size
	bytesJitter  float64 // multiplicative payload noise
	ephemeralLow int     // source-port range start
}

// NFD is the net-flow stream generator.
type NFD struct {
	cfg     NFDConfig
	rng     *rand.Rand
	zipfSrc *rand.Zipf
	zipfDst *rand.Zipf
	regime  nfdRegime
	count   int
	regimes int
}

// NewNFD validates the configuration and draws the first regime.
func NewNFD(cfg NFDConfig) (*NFD, error) {
	cfg = cfg.withDefaults()
	if cfg.Pd < 0 || cfg.Pd > 1 {
		return nil, fmt.Errorf("stream: NFD Pd = %v outside [0,1]", cfg.Pd)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &NFD{
		cfg:     cfg,
		rng:     rng,
		zipfSrc: rand.NewZipf(rng, 1.2, 1, uint64(cfg.NumHosts-1)),
		zipfDst: rand.NewZipf(rng, 1.5, 1, uint64(cfg.NumHosts-1)),
	}
	g.redraw()
	return g, nil
}

func (g *NFD) redraw() {
	g.regime = nfdRegime{
		service:      wellKnownServices[g.rng.Intn(len(wellKnownServices))],
		hostBias:     g.rng.Intn(g.cfg.NumHosts),
		paretoAlpha:  1.2 + g.rng.Float64()*1.3, // 1.2–2.5: heavy but finite-mean
		paretoMin:    1 + g.rng.Float64()*8,
		bytesPerPkt:  64 + g.rng.Float64()*1400, // Ethernet payload range
		bytesJitter:  0.1 + g.rng.Float64()*0.4,
		ephemeralLow: 1024 + g.rng.Intn(16384),
	}
	g.regimes++
}

// Next emits one normalized 6-d net-flow record.
func (g *NFD) Next() linalg.Vector {
	if g.count > 0 && g.count%g.cfg.RegimeLen == 0 && g.rng.Float64() < g.cfg.Pd {
		g.redraw()
	}
	g.count++
	r := g.regime

	srcHost := int(g.zipfSrc.Uint64())
	dstHost := (r.hostBias + int(g.zipfDst.Uint64())) % g.cfg.NumHosts
	srcPort := r.ephemeralLow + g.rng.Intn(4096)
	dstPort := r.service
	if g.rng.Float64() < 0.1 { // background traffic off the dominant service
		dstPort = wellKnownServices[g.rng.Intn(len(wellKnownServices))]
	}
	packets := pareto(g.rng, r.paretoAlpha, r.paretoMin)
	bytes := packets * r.bytesPerPkt * math.Exp(g.rng.NormFloat64()*r.bytesJitter)

	// Normalization: hosts and ports scale linearly into [0,1]; volumes are
	// heavy-tailed, so they map through log1p against generous caps.
	const maxPackets, maxBytes = 1e6, 1.5e9
	x := linalg.Vector{
		float64(srcHost) / float64(g.cfg.NumHosts),
		float64(dstHost) / float64(g.cfg.NumHosts),
		float64(srcPort) / 65535,
		float64(dstPort) / 65535,
		clamp01(math.Log1p(packets) / math.Log1p(maxPackets)),
		clamp01(math.Log1p(bytes) / math.Log1p(maxBytes)),
	}
	if g.cfg.Jitter > 0 {
		for i := range x {
			x[i] = clamp01(x[i] + g.rng.NormFloat64()*g.cfg.Jitter)
		}
	}
	return x
}

// Dim returns NFDDim.
func (g *NFD) Dim() int { return NFDDim }

// Regimes returns how many traffic regimes have occurred.
func (g *NFD) Regimes() int { return g.regimes }

// Emitted returns the number of records produced.
func (g *NFD) Emitted() int { return g.count }

// pareto draws from a Pareto distribution with the given tail index and
// minimum: x = min / U^{1/alpha}.
func pareto(rng *rand.Rand, alpha, min float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return min / math.Pow(u, 1/alpha)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
