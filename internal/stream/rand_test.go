package stream

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/linalg"
)

// newTestRand centralizes RNG construction for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sameStream reports whether two record streams are bit-identical,
// treating NaN (missing attributes) as equal to NaN.
func sameStream(a, b []linalg.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestSyntheticSeedBitDeterminism pins the evolving-Gaussian generator's
// reproducibility contract: the same seed must produce a bit-identical
// stream (regime switches, noise, and missing values included), and a
// different seed must not. Every figure in the suite relies on this to be
// re-runnable.
func TestSyntheticSeedBitDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Dim: 4, K: 5, Pd: 0.3, RegimeLen: 50, NoiseFrac: 0.05, MissingFrac: 0.1, Seed: 42}
	take := func(seed int64) []linalg.Vector {
		c := cfg
		c.Seed = seed
		g, err := NewSynthetic(c)
		if err != nil {
			t.Fatal(err)
		}
		return Take(g, 1000)
	}
	if !sameStream(take(42), take(42)) {
		t.Fatal("same seed produced different synthetic streams")
	}
	if sameStream(take(42), take(43)) {
		t.Fatal("different seeds produced identical synthetic streams")
	}
}

// TestNFDSeedBitDeterminism is the same contract for the net-flow generator.
func TestNFDSeedBitDeterminism(t *testing.T) {
	take := func(seed int64) []linalg.Vector {
		g, err := NewNFD(NFDConfig{Pd: 0.3, RegimeLen: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return Take(g, 800)
	}
	if !sameStream(take(7), take(7)) {
		t.Fatal("same seed produced different NFD streams")
	}
	if sameStream(take(7), take(8)) {
		t.Fatal("different seeds produced identical NFD streams")
	}
}

// TestTakeIndependentOfCallPattern verifies that chunked draws observe the
// same stream as one bulk draw — generators must not depend on how callers
// batch their reads.
func TestTakeIndependentOfCallPattern(t *testing.T) {
	mk := func() *Synthetic {
		g, err := NewSynthetic(SyntheticConfig{Dim: 3, K: 2, Pd: 0.2, RegimeLen: 30, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	bulk := Take(mk(), 600)
	g := mk()
	var chunked []linalg.Vector
	for i := 0; i < 6; i++ {
		chunked = append(chunked, Take(g, 100)...)
	}
	if !sameStream(bulk, chunked) {
		t.Fatal("chunked Take diverged from bulk Take")
	}
}
