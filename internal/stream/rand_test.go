package stream

import "math/rand"

// newTestRand centralizes RNG construction for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
