package stream

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Dim: 0, K: 2},
		{Dim: 2, K: 0},
		{Dim: 2, K: 2, Pd: -0.1},
		{Dim: 2, K: 2, Pd: 1.5},
		{Dim: 2, K: 2, NoiseFrac: 1},
	}
	for i, cfg := range bad {
		if _, err := NewSynthetic(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	mk := func() []linalg.Vector {
		g, err := NewSynthetic(SyntheticConfig{Dim: 3, K: 2, Pd: 0.5, RegimeLen: 100, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return Take(g, 500)
	}
	a, b := mk(), mk()
	for i := range a {
		if !a[i].Equal(b[i], 0) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSyntheticRegimeSwitching(t *testing.T) {
	// Pd=1 forces a redraw at every boundary.
	g, _ := NewSynthetic(SyntheticConfig{Dim: 1, K: 1, Pd: 1, RegimeLen: 100, Seed: 7})
	Take(g, 1000)
	if got := g.Regimes(); got != 10 {
		t.Fatalf("regimes = %d, want 10", got)
	}
	// Pd=0 never switches.
	g0, _ := NewSynthetic(SyntheticConfig{Dim: 1, K: 1, Pd: 0, RegimeLen: 100, Seed: 7})
	Take(g0, 1000)
	if got := g0.Regimes(); got != 1 {
		t.Fatalf("regimes = %d, want 1", got)
	}
	if g0.Emitted() != 1000 {
		t.Fatalf("Emitted = %d", g0.Emitted())
	}
}

func TestSyntheticPdStatistics(t *testing.T) {
	// With Pd=0.3 and 100 boundaries, regime draws ≈ 1 + Binomial(99, 0.3).
	g, _ := NewSynthetic(SyntheticConfig{Dim: 1, K: 1, Pd: 0.3, RegimeLen: 100, Seed: 11})
	Take(g, 10000)
	got := g.Regimes()
	if got < 15 || got > 50 {
		t.Fatalf("regimes = %d, want ≈30", got)
	}
}

func TestSyntheticSamplesFollowCurrentMixture(t *testing.T) {
	g, _ := NewSynthetic(SyntheticConfig{Dim: 2, K: 3, Pd: 0, Seed: 13})
	data := Take(g, 3000)
	ll := g.CurrentMixture().AvgLogLikelihood(data)
	// Data drawn from the mixture itself must have healthy likelihood.
	if ll < -6 {
		t.Fatalf("avg LL = %v under own mixture", ll)
	}
}

func TestSyntheticNoiseInjection(t *testing.T) {
	g, _ := NewSynthetic(SyntheticConfig{Dim: 1, K: 1, Pd: 0, NoiseFrac: 0.5, MeanRange: 10, Seed: 17})
	data := Take(g, 4000)
	// With 50% uniform noise over ±12, many records must fall far outside
	// the (σ≤√2) cluster.
	mu := g.CurrentMixture().Component(0).Mean()[0]
	var far int
	for _, x := range data {
		if math.Abs(x[0]-mu) > 5 {
			far++
		}
	}
	if far < 500 {
		t.Fatalf("only %d far-out records with 50%% noise", far)
	}
}

func TestSyntheticMissingFrac(t *testing.T) {
	g, err := NewSynthetic(SyntheticConfig{Dim: 3, K: 2, Pd: 0, MissingFrac: 0.3, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	data := Take(g, 3000)
	var missing, rows int
	for _, x := range data {
		blanked := 0
		for _, v := range x {
			if math.IsNaN(v) {
				missing++
				blanked++
			}
		}
		if blanked == len(x) {
			t.Fatal("fully-blank record emitted")
		}
		rows++
	}
	frac := float64(missing) / float64(rows*3)
	if frac < 0.2 || frac > 0.35 {
		t.Fatalf("missing fraction = %v, want ≈0.3 (capped by the full-blank guard)", frac)
	}
	if _, err := NewSynthetic(SyntheticConfig{Dim: 1, K: 1, MissingFrac: 1}); err == nil {
		t.Fatal("MissingFrac=1 accepted")
	}
}

func TestAlternatingCycles(t *testing.T) {
	a := gaussian.MustMixture([]float64{1}, []*gaussian.Component{gaussian.Spherical(linalg.Vector{-100}, 1)})
	b := gaussian.MustMixture([]float64{1}, []*gaussian.Component{gaussian.Spherical(linalg.Vector{100}, 1)})
	g, err := NewAlternating([]*gaussian.Mixture{a, b}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := Take(g, 200)
	for i, x := range data {
		wantNeg := (i/50)%2 == 0
		if wantNeg != (x[0] < 0) {
			t.Fatalf("record %d = %v on wrong side", i, x[0])
		}
	}
	if g.ActiveIndex() != 1 {
		t.Fatalf("ActiveIndex = %d", g.ActiveIndex())
	}
}

func TestAlternatingValidation(t *testing.T) {
	a := gaussian.MustMixture([]float64{1}, []*gaussian.Component{gaussian.Spherical(linalg.Vector{0}, 1)})
	b2d := gaussian.MustMixture([]float64{1}, []*gaussian.Component{gaussian.Spherical(linalg.Vector{0, 0}, 1)})
	if _, err := NewAlternating(nil, 10, 1); err == nil {
		t.Error("empty mixture list accepted")
	}
	if _, err := NewAlternating([]*gaussian.Mixture{a}, 0, 1); err == nil {
		t.Error("regimeLen 0 accepted")
	}
	if _, err := NewAlternating([]*gaussian.Mixture{a, b2d}, 10, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestNFDShapeAndRange(t *testing.T) {
	g, err := NewNFD(NFDConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != NFDDim {
		t.Fatalf("Dim = %d", g.Dim())
	}
	data := Take(g, 5000)
	for i, x := range data {
		if len(x) != 6 {
			t.Fatalf("record %d has dim %d", i, len(x))
		}
		for a, v := range x {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("record %d attr %d = %v outside [0,1]", i, a, v)
			}
		}
	}
}

func TestNFDHeavyTailedVolumes(t *testing.T) {
	g, _ := NewNFD(NFDConfig{Seed: 2, Pd: 0})
	data := Take(g, 20000)
	// The raw packet counts (inverting the log1p normalization of
	// attribute 4) must be Pareto-tailed: mean well above median, and a
	// max orders of magnitude above it.
	const maxPackets = 1e6
	raw := make([]float64, len(data))
	var mean, max float64
	for i, x := range data {
		raw[i] = math.Expm1(x[4] * math.Log1p(maxPackets))
		mean += raw[i]
		if raw[i] > max {
			max = raw[i]
		}
	}
	mean /= float64(len(raw))
	var below int
	for _, v := range raw {
		if v < mean {
			below++
		}
	}
	if below <= len(raw)*55/100 {
		t.Fatalf("raw volumes not right-skewed: %d/%d below mean", below, len(raw))
	}
	if max < 20*mean {
		t.Fatalf("tail too light: max %v vs mean %v", max, mean)
	}
}

func TestNFDRegimeShiftsMoveDistribution(t *testing.T) {
	g, _ := NewNFD(NFDConfig{Seed: 3, Pd: 1, RegimeLen: 5000})
	first := Take(g, 5000)
	_ = Take(g, 5000) // let several regimes pass
	_ = Take(g, 5000)
	later := Take(g, 5000)
	if g.Regimes() < 2 {
		t.Fatalf("regimes = %d", g.Regimes())
	}
	// Mean destination-port attribute should move across regimes.
	meanAttr := func(data []linalg.Vector, i int) float64 {
		var s float64
		for _, x := range data {
			s += x[i]
		}
		return s / float64(len(data))
	}
	moved := false
	for _, i := range []int{1, 3, 4, 5} {
		if math.Abs(meanAttr(first, i)-meanAttr(later, i)) > 0.02 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("regime change left all attribute means unchanged")
	}
}

func TestNFDValidation(t *testing.T) {
	if _, err := NewNFD(NFDConfig{Pd: 2}); err == nil {
		t.Fatal("Pd=2 accepted")
	}
}

func TestParetoTail(t *testing.T) {
	rng := newTestRand(5)
	var max, sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := pareto(rng, 1.5, 1)
		if v < 1 {
			t.Fatalf("pareto below min: %v", v)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	// E[X] = α/(α-1) = 3 for α=1.5, min=1. Sample mean is noisy but
	// should land in a broad band; the max must be far out in the tail.
	mean := sum / n
	if mean < 2 || mean > 5 {
		t.Fatalf("pareto mean = %v, want ≈3", mean)
	}
	if max < 100 {
		t.Fatalf("pareto max = %v, tail too light", max)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data := []linalg.Vector{{1.5, -2.25}, {0, 3e-9}, {math.Pi, -math.E}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("read %d rows", len(got))
	}
	for i := range data {
		if !got[i].Equal(data[i], 0) {
			t.Fatalf("row %d: %v != %v", i, got[i], data[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	got, err := ReadCSV(strings.NewReader("\n\n1,2\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line handling: %v %v", got, err)
	}
}

func TestNormalize(t *testing.T) {
	data := []linalg.Vector{{0, 5, 7}, {10, 5, 14}, {5, 5, 0}}
	mins, maxs := Normalize(data)
	if mins[0] != 0 || maxs[0] != 10 {
		t.Fatalf("mins/maxs = %v %v", mins, maxs)
	}
	if data[0][0] != 0 || data[1][0] != 1 || data[2][0] != 0.5 {
		t.Fatalf("attr0 = %v %v %v", data[0][0], data[1][0], data[2][0])
	}
	// Constant attribute maps to 0.
	for i := range data {
		if data[i][1] != 0 {
			t.Fatalf("constant attr not zeroed: %v", data[i][1])
		}
	}
	if m, _ := Normalize(nil); m != nil {
		t.Fatal("empty normalize")
	}
}
