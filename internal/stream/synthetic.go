// Package stream provides the data sources of the paper's evaluation
// (Section 6): a synthetic evolving-Gaussian stream whose underlying
// distribution is redrawn with probability P_d every regime interval, an
// NFD-like net-flow generator standing in for the proprietary Shanghai
// Telecom data set, optional noise injection, and CSV (de)serialization for
// the command-line tools.
package stream

import (
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// Generator is a source of stream records.
type Generator interface {
	// Next returns the next record. The returned vector is owned by the
	// caller.
	Next() linalg.Vector
	// Dim returns the record dimensionality.
	Dim() int
}

// SyntheticConfig parameterizes the evolving-Gaussian generator. The paper:
// "The data records in each synthetic data set follow a series of Gaussian
// distributions. To reflect the evolution of the stream data over time, we
// generate new Gaussian distribution for every 2K points by probability
// P_d."
type SyntheticConfig struct {
	// Dim is d (paper default 4).
	Dim int
	// K is the number of Gaussian components per regime (paper default 5).
	K int
	// Pd is the probability that a new underlying distribution is drawn at
	// each regime boundary (paper default 0.1).
	Pd float64
	// RegimeLen is the number of points between regime draws (paper: 2K
	// points, i.e. 2000).
	RegimeLen int
	// NoiseFrac replaces this fraction of records with uniform noise over
	// the mean range (Figure 4(d) uses 5%).
	NoiseFrac float64
	// MissingFrac blanks each attribute to NaN independently with this
	// probability (never blanking a whole record) — the "incomplete data
	// records" of the paper's introduction, e.g. an unreliable P2P
	// environment producing corrupted click-stream fields.
	MissingFrac float64
	// MeanRange bounds component means: drawn uniformly in ±MeanRange
	// (default 10).
	MeanRange float64
	// VarMin, VarMax bound component variances (defaults 0.5, 2).
	VarMin, VarMax float64
	// Seed makes the stream reproducible.
	Seed int64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.RegimeLen <= 0 {
		c.RegimeLen = 2000
	}
	if c.MeanRange <= 0 {
		c.MeanRange = 10
	}
	if c.VarMin <= 0 {
		c.VarMin = 0.5
	}
	if c.VarMax < c.VarMin {
		c.VarMax = c.VarMin + 1.5
	}
	return c
}

// Synthetic is the evolving-Gaussian stream generator.
type Synthetic struct {
	cfg     SyntheticConfig
	rng     *rand.Rand
	current *gaussian.Mixture
	count   int // records emitted
	regimes int // distinct distributions so far
}

// NewSynthetic validates the configuration and builds the generator with
// its first regime drawn.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("stream: Dim = %d", cfg.Dim)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("stream: K = %d", cfg.K)
	}
	if cfg.Pd < 0 || cfg.Pd > 1 {
		return nil, fmt.Errorf("stream: Pd = %v outside [0,1]", cfg.Pd)
	}
	if cfg.NoiseFrac < 0 || cfg.NoiseFrac >= 1 {
		return nil, fmt.Errorf("stream: NoiseFrac = %v outside [0,1)", cfg.NoiseFrac)
	}
	if cfg.MissingFrac < 0 || cfg.MissingFrac >= 1 {
		return nil, fmt.Errorf("stream: MissingFrac = %v outside [0,1)", cfg.MissingFrac)
	}
	g := &Synthetic{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.redraw()
	return g, nil
}

// redraw replaces the current regime with a fresh random mixture.
func (g *Synthetic) redraw() {
	comps := make([]*gaussian.Component, g.cfg.K)
	ws := make([]float64, g.cfg.K)
	for j := range comps {
		mean := linalg.NewVector(g.cfg.Dim)
		for i := range mean {
			mean[i] = (g.rng.Float64()*2 - 1) * g.cfg.MeanRange
		}
		variance := g.cfg.VarMin + g.rng.Float64()*(g.cfg.VarMax-g.cfg.VarMin)
		comps[j] = gaussian.Spherical(mean, variance)
		ws[j] = 0.5 + g.rng.Float64() // weights in [0.5, 1.5), then normalized
	}
	g.current = gaussian.MustMixture(ws, comps)
	g.regimes++
}

// Next emits one record, handling regime boundaries and noise injection.
func (g *Synthetic) Next() linalg.Vector {
	if g.count > 0 && g.count%g.cfg.RegimeLen == 0 && g.rng.Float64() < g.cfg.Pd {
		g.redraw()
	}
	g.count++
	var x linalg.Vector
	if g.cfg.NoiseFrac > 0 && g.rng.Float64() < g.cfg.NoiseFrac {
		x = linalg.NewVector(g.cfg.Dim)
		for i := range x {
			x[i] = (g.rng.Float64()*2 - 1) * g.cfg.MeanRange * 1.2
		}
	} else {
		x = g.current.Sample(g.rng)
	}
	if g.cfg.MissingFrac > 0 {
		blanked := 0
		for i := range x {
			if blanked < len(x)-1 && g.rng.Float64() < g.cfg.MissingFrac {
				x[i] = math.NaN()
				blanked++
			}
		}
	}
	return x
}

// Dim returns the record dimensionality.
func (g *Synthetic) Dim() int { return g.cfg.Dim }

// CurrentMixture returns the regime currently generating records (ground
// truth for quality experiments).
func (g *Synthetic) CurrentMixture() *gaussian.Mixture { return g.current }

// Regimes returns the number of distinct distributions drawn so far.
func (g *Synthetic) Regimes() int { return g.regimes }

// Emitted returns the number of records produced.
func (g *Synthetic) Emitted() int { return g.count }

// Take returns the next n records.
func Take(g Generator, n int) []linalg.Vector {
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Alternating cycles deterministically between a fixed set of mixtures
// every RegimeLen records — the "alternating models" scenario of Section
// 5.1.2 that motivates the multi-test strategy and Figure 13's c_max sweep.
type Alternating struct {
	mixes     []*gaussian.Mixture
	regimeLen int
	rng       *rand.Rand
	count     int
}

// NewAlternating builds a generator cycling through mixes.
func NewAlternating(mixes []*gaussian.Mixture, regimeLen int, seed int64) (*Alternating, error) {
	if len(mixes) == 0 {
		return nil, fmt.Errorf("stream: no mixtures")
	}
	if regimeLen < 1 {
		return nil, fmt.Errorf("stream: regimeLen = %d", regimeLen)
	}
	d := mixes[0].Dim()
	for i, m := range mixes {
		if m.Dim() != d {
			return nil, fmt.Errorf("stream: mixture %d has dim %d, want %d", i, m.Dim(), d)
		}
	}
	return &Alternating{mixes: mixes, regimeLen: regimeLen, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next emits one record from the active mixture.
func (g *Alternating) Next() linalg.Vector {
	idx := (g.count / g.regimeLen) % len(g.mixes)
	g.count++
	return g.mixes[idx].Sample(g.rng)
}

// Dim returns the record dimensionality.
func (g *Alternating) Dim() int { return g.mixes[0].Dim() }

// ActiveIndex returns which mixture generated the most recent record.
func (g *Alternating) ActiveIndex() int {
	if g.count == 0 {
		return 0
	}
	return ((g.count - 1) / g.regimeLen) % len(g.mixes)
}
