package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler serves the registry's debug surface:
//
//	/debug/vars          — JSON Snapshot (expvar-style, but structured)
//	/debug/events        — JSON journal events; ?after=SEQ tails from a
//	                       sequence number, ?limit=N bounds the reply
//	/debug/traces        — JSON TracerSnapshot (slowest-trace exemplars and
//	                       span counts); ?id=TRACE returns one trace
//	/debug/pprof/...     — net/http/pprof (profile, heap, goroutine, trace)
//	/                    — tiny index of the above
//
// The handler is safe on a nil registry (it serves empty snapshots), so
// daemons can expose pprof even when telemetry is off.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		after, err := parseUint(q.Get("after"))
		if err != nil {
			http.Error(w, "bad after: "+err.Error(), http.StatusBadRequest)
			return
		}
		limit := 0
		if s := q.Get("limit"); s != "" {
			limit, err = strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		events := r.Journal().Since(after, limit)
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, struct {
			LastSeq uint64  `json:"last_seq"`
			Events  []Event `json:"events"`
		}{r.Journal().LastSeq(), events})
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		t := r.Tracer()
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := parseUint(idStr)
			if err != nil {
				http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
				return
			}
			tr, ok := t.TraceByID(id)
			if !ok {
				http.Error(w, "trace not found (completed traces age out of the active table)", http.StatusNotFound)
				return
			}
			writeJSON(w, tr)
			return
		}
		writeJSON(w, t.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("cludistream debug endpoints:\n" +
			"  /debug/vars    telemetry snapshot (JSON)\n" +
			"  /debug/events  decision journal (JSON; ?after=SEQ&limit=N)\n" +
			"  /debug/traces  slowest-trace exemplars + span counts (JSON; ?id=TRACE for one trace)\n" +
			"  /debug/pprof/  runtime profiles\n"))
	})
	return mux
}

func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // best-effort: a broken client connection is not our error
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug surface on addr ("host:port", ":0" for an
// ephemeral port) in a background goroutine. Callers Close it on
// shutdown.
func Serve(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) // Serve returns when ln closes; nothing to report
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the listening address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close stops the listener and closes idle connections.
func (d *DebugServer) Close() error { return d.srv.Close() }
