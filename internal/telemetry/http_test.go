package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("site.chunks_fit").Add(7)
	r.Histogram("site.archive_hit_depth", 1, 2, 3, 4).Observe(2)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["site.chunks_fit"] != 7 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
	if s.Histograms["site.archive_hit_depth"].Count != 1 {
		t.Fatalf("snapshot histograms = %v", s.Histograms)
	}
}

func TestHandlerEvents(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 5; i++ {
		r.Record(Event{Kind: "chunk-refit", Site: 1, N: i})
	}
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	var reply struct {
		LastSeq uint64  `json:"last_seq"`
		Events  []Event `json:"events"`
	}
	get := func(path string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
	}
	get("/debug/events")
	if reply.LastSeq != 5 || len(reply.Events) != 5 {
		t.Fatalf("events = %+v", reply)
	}
	get("/debug/events?after=3&limit=1")
	if len(reply.Events) != 1 || reply.Events[0].N != 5 {
		t.Fatalf("tail = %+v", reply.Events)
	}

	resp, err := http.Get(srv.URL + "/debug/events?after=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad after: status %d", resp.StatusCode)
	}
}

func TestHandlerPprofAndIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(nil)) // pprof must work without telemetry
	defer srv.Close()

	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", path, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("coord.updates_handled").Inc()
	d, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr().String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["coord.updates_handled"] != 1 {
		t.Fatalf("snapshot = %v", s.Counters)
	}
}
