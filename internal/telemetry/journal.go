package telemetry

import (
	"sync"
	"time"
)

// Event is one structured journal entry: a runtime decision the paper
// reasons about (a chunk passing or failing the J_fit test, an archived
// model re-activating at some depth, an EM run converging, a coordinator
// split, a transport backoff). The fixed fields cover every producer in
// the codebase without a per-event allocation map:
//
//	Kind  — the decision, e.g. "chunk-fit", "chunk-refit", "em-fit",
//	        "split", "reconnect", "courier-backoff"
//	Site  — originating site id (0 when not site-scoped)
//	Model — model/group id involved (0 when none)
//	Value — the decision's scalar: J_fit margin, final avg log-likelihood,
//	        backoff seconds
//	N     — the decision's count: archive-hit depth, EM iterations, bytes
//	Note  — short free-form qualifier ("converged", "outbox-overflow")
type Event struct {
	Seq    uint64  `json:"seq"`
	UnixNs int64   `json:"unix_ns"`
	Kind   string  `json:"kind"`
	Site   int     `json:"site,omitempty"`
	Model  int     `json:"model,omitempty"`
	Value  float64 `json:"value,omitempty"`
	N      int     `json:"n,omitempty"`
	Note   string  `json:"note,omitempty"`
}

// Journal is a bounded ring buffer of Events. Recording is O(1) and never
// grows the buffer: once capacity is reached the oldest event is evicted
// (and counted), so a long-running daemon exposes the recent decision
// history at a fixed memory cost. All methods are nil-receiver safe.
type Journal struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len == cap once full
	cap     int
	start   int    // index of the oldest retained event
	n       int    // retained events
	nextSeq uint64 // seq assigned to the next event (1-based)
	dropped uint64
}

// NewJournal returns a journal retaining at most capacity events
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{cap: capacity}
}

// Record appends one event, stamping Seq and UnixNs.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	e.UnixNs = time.Now().UnixNano()
	j.mu.Lock()
	j.nextSeq++
	e.Seq = j.nextSeq
	if j.n < j.cap {
		j.buf = append(j.buf, e)
		j.n++
	} else {
		j.buf[j.start] = e
		j.start = (j.start + 1) % j.cap
		j.dropped++
	}
	j.mu.Unlock()
}

// Since returns up to limit retained events with Seq > after, oldest
// first. limit <= 0 means no limit. Nil journals return nil.
func (j *Journal) Since(after uint64, limit int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		e := j.buf[(j.start+i)%len(j.buf)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Tail returns the newest n retained events, oldest first — the journal
// slice a failure artifact embeds so a violation carries the decision
// history that led to it. n <= 0 returns every retained event.
func (j *Journal) Tail(n int) []Event { return j.Since(0, n) }

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// LastSeq returns the sequence number of the newest event (0 when empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Info summarizes the journal for snapshots.
func (j *Journal) Info() JournalInfo {
	if j == nil {
		return JournalInfo{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalInfo{Len: j.n, LastSeq: j.nextSeq, Dropped: j.dropped}
}
