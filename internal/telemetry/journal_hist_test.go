package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramIgnoresNaNAndClampsInf pins the non-finite input policy:
// NaN observations are dropped entirely (a single NaN would otherwise
// poison Sum forever), +Inf lands in the overflow bucket and −Inf in the
// first bucket — both counted but excluded from the sum.
func TestHistogramIgnoresNaNAndClampsInf(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(1.5)

	s := h.snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4 (NaN dropped, ±Inf counted)", s.Count)
	}
	if s.Sum != 2.0 || math.IsNaN(s.Sum) || math.IsInf(s.Sum, 0) {
		t.Fatalf("sum = %v, want 2.0 untouched by non-finite inputs", s.Sum)
	}
	// 0.5 and −Inf in bucket 0, 1.5 in bucket 1, +Inf overflows.
	if s.Buckets[0].Count != 2 || s.Buckets[1].Count != 1 || s.Overflow != 1 {
		t.Fatalf("buckets = %+v overflow = %d", s.Buckets, s.Overflow)
	}
	var total int64 = s.Overflow
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatal("histogram mass lost on non-finite input")
	}
}

// TestJournalTailEdges covers Tail's corner cases around a wrapped ring.
func TestJournalTailEdges(t *testing.T) {
	j := NewJournal(4)
	if got := j.Tail(0); len(got) != 0 {
		t.Fatalf("Tail(0) on empty journal = %+v", got)
	}
	if got := j.Tail(10); len(got) != 0 {
		t.Fatalf("Tail(10) on empty journal = %+v", got)
	}
	for i := 1; i <= 7; i++ { // wraps: retains events 4..7
		j.Record(Event{Kind: "e", N: i})
	}
	// n <= 0 returns everything retained, oldest first.
	for _, n := range []int{0, -1} {
		got := j.Tail(n)
		if len(got) != 4 || got[0].N != 4 || got[3].N != 7 {
			t.Fatalf("Tail(%d) = %+v", n, got)
		}
	}
	// n > retained is clamped, not padded or panicking.
	if got := j.Tail(100); len(got) != 4 || got[0].N != 4 {
		t.Fatalf("Tail(100) = %+v", got)
	}
	// n < retained keeps the newest n.
	if got := j.Tail(2); len(got) != 2 || got[0].N != 6 || got[1].N != 7 {
		t.Fatalf("Tail(2) = %+v", got)
	}
	// Seq numbering survives the wrap.
	got := j.Tail(0)
	for i, e := range got {
		if e.Seq != uint64(i+4) {
			t.Fatalf("seq[%d] = %d after wrap", i, e.Seq)
		}
	}
	var nilJ *Journal
	if nilJ.Tail(5) != nil {
		t.Fatal("nil journal Tail not nil")
	}
}

// TestJournalConcurrentAppenders hammers a small ring from many goroutines
// (run under -race in `make race`): every record is either retained or
// counted dropped, and Tail stays consistent mid-flight.
func TestJournalConcurrentAppenders(t *testing.T) {
	j := NewJournal(8)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(Event{Kind: "e", Site: id, N: i})
				if i%64 == 0 {
					if tail := j.Tail(4); len(tail) > 4 {
						t.Errorf("Tail(4) returned %d events", len(tail))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if j.LastSeq() != goroutines*per {
		t.Fatalf("last seq = %d, want %d", j.LastSeq(), goroutines*per)
	}
	info := j.Info()
	if info.Len != 8 || info.Dropped != goroutines*per-8 {
		t.Fatalf("info = %+v", info)
	}
	tail := j.Tail(0)
	if len(tail) != 8 {
		t.Fatalf("retained = %d", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous: %+v", tail)
		}
	}
}
