// Package telemetry is the observability substrate for CluDistream's
// runtime decisions: a registry of atomic counters, gauges and fixed-bucket
// histograms, plus a bounded structured event journal (see journal.go) and
// an HTTP debug surface (see http.go).
//
// Design constraints, in order:
//
//  1. Telemetry must never change clustering output. Instruments only read
//     values the algorithms already computed; nothing here touches a rand
//     source or reorders floating-point work. The facade pins this with a
//     bit-identical on/off test.
//  2. Disabled telemetry must cost a nil check and nothing else. Every
//     method on every type is safe on a nil receiver, so instrumented code
//     resolves instrument pointers once at construction time and calls them
//     unconditionally; with no registry configured the pointers are nil and
//     each call is a single predictable branch.
//  3. Stdlib only, and safe for concurrent use: counters and histogram
//     buckets are atomics, so site goroutines, the netio server and the
//     HTTP snapshot reader never contend on a lock in the hot path.
//
// Naming convention: instruments are namespaced "layer.metric" —
// "site.chunks_fit", "em.iterations", "coord.dedupe_dropped",
// "net.retransmit_bytes" — so a snapshot reads as a map of the system.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver safe (no-ops / zeros), which is the entire disabled path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is allowed but instruments should not need it).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level (queue depth, last value).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper bound is >= v, and values above the last bound clamp
// into a final overflow bucket — mass is never dropped, mirroring
// metrics.Histogram's clamping convention. Bounds are fixed at creation;
// counts, total and sum are atomics.
type Histogram struct {
	bounds []float64 // ascending upper bounds (inclusive)
	counts []atomic.Int64
	over   atomic.Int64 // observations above bounds[len-1]
	n      atomic.Int64
	sum    Gauge
}

// NewHistogram builds a histogram with the given ascending inclusive upper
// bounds. At least one bound is required; non-ascending bounds panic (an
// instrumentation bug, not data).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds))
	return h
}

// Observe records one value. Non-finite inputs cannot be allowed to reach
// the running sum — a single NaN or ±Inf would poison Sum() (and every
// mean derived from it) forever. NaN is ignored outright; ±Inf still
// counts as an observation, clamped into the outermost bucket, but its
// magnitude is left out of the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		return
	}
	h.n.Add(1)
	if math.IsInf(v, 0) {
		if v > 0 {
			h.over.Add(1)
		} else {
			h.counts[0].Add(1)
		}
		return
	}
	h.sum.Add(v)
	// Linear scan: instrument bucket counts are small (4–20) and the scan
	// is branch-predictable; sort.SearchFloat64s would allocate nothing
	// either but costs more on tiny slices.
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below the inclusive upper bound Le (and above the previous bound).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram reading.
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow"` // observations above the last bound
}

// snapshot reads the histogram. Buckets are read individually, so a
// concurrent Observe may be visible in some buckets and not the totals;
// snapshots are diagnostics, not invariants.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.n.Load(),
		Sum:      h.sum.Value(),
		Overflow: h.over.Load(),
		Buckets:  make([]Bucket, len(h.bounds)),
	}
	for i, ub := range h.bounds {
		s.Buckets[i] = Bucket{Le: ub, Count: h.counts[i].Load()}
	}
	return s
}

// Registry names and owns instruments. Lookup methods create on first use
// and are cheap enough for per-fit or per-chunk call sites; per-record hot
// paths should resolve instruments once and keep the pointers. A nil
// *Registry is the disabled state: every method no-ops and every lookup
// returns a nil instrument whose methods also no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	journal  *Journal
	tracer   *Tracer // non-nil once EnableTracing has run (see trace.go)
}

// DefaultJournalCap is the event-journal capacity NewRegistry provisions.
const DefaultJournalCap = 4096

// NewRegistry returns an empty registry with a DefaultJournalCap journal.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		journal:  NewJournal(DefaultJournalCap),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds
// apply only on first creation; later lookups reuse the existing buckets
// regardless of the bounds argument. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Journal returns the registry's event journal (nil on a nil registry).
func (r *Registry) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.journal
}

// Record appends one event to the journal (no-op on a nil registry).
func (r *Registry) Record(e Event) {
	if r == nil {
		return
	}
	r.journal.Record(e)
}

// JournalInfo summarizes the journal inside a snapshot.
type JournalInfo struct {
	Len     int    `json:"len"`
	LastSeq uint64 `json:"last_seq"`
	Dropped uint64 `json:"dropped"` // events evicted by the ring bound
}

// Snapshot is a point-in-time JSON-friendly reading of every instrument.
// Map keys JSON-encode in sorted order, so encoded snapshots are
// deterministic given deterministic counter values.
type Snapshot struct {
	TakenUnixNs int64                        `json:"taken_unix_ns"`
	Counters    map[string]int64             `json:"counters"`
	Gauges      map[string]float64           `json:"gauges"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
	Journal     JournalInfo                  `json:"journal"`
}

// Snapshot captures the current value of every instrument. On a nil
// registry it returns an empty (but non-nil-mapped) snapshot so callers
// can serve it unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		TakenUnixNs: time.Now().UnixNano(),
		Counters:    map[string]int64{},
		Gauges:      map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		s.Histograms[name] = h.snapshot()
	}
	if j := r.journal; j != nil {
		s.Journal = j.Info()
	}
	return s
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
