package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	// Every lookup and every instrument method must be a no-op on nil.
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("h", 1, 2)
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	r.Record(Event{Kind: "x"})
	if j := r.Journal(); j.Len() != 0 || j.LastSeq() != 0 || j.Since(0, 0) != nil {
		t.Fatal("nil journal retained events")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	if r.CounterNames() != nil {
		t.Fatal("nil CounterNames")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("site.chunks")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("site.chunks") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("net.queued")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBucketsAndClamping(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{-10, 0.5, 1, 1.5, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	// -10, 0.5, 1 ≤ 1 → bucket 0; 1.5 → bucket 1; 3, 4 → bucket 2;
	// 100 overflows.
	want := []int64{3, 1, 2}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.Le, b.Count, want[i])
		}
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d", s.Overflow)
	}
	var total int64 = s.Overflow
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatal("histogram mass lost")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram() },
		func() { NewHistogram(2, 1) },
		func() { NewHistogram(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramFirstBoundsWin(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", 1, 2, 3)
	h2 := r.Histogram("h", 10)
	if h1 != h2 {
		t.Fatal("same name must return the same histogram")
	}
	h2.Observe(2.5)
	if got := h1.snapshot().Buckets[2].Count; got != 1 {
		t.Fatalf("observation did not land in the original buckets: %d", got)
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(3)
	for i := 1; i <= 5; i++ {
		j.Record(Event{Kind: "e", N: i})
	}
	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	if j.LastSeq() != 5 {
		t.Fatalf("last seq = %d", j.LastSeq())
	}
	got := j.Since(0, 0)
	if len(got) != 3 || got[0].N != 3 || got[2].N != 5 {
		t.Fatalf("retained = %+v", got)
	}
	for i, e := range got {
		if e.Seq != uint64(i+3) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
	}
	if info := j.Info(); info.Dropped != 2 || info.Len != 3 || info.LastSeq != 5 {
		t.Fatalf("info = %+v", info)
	}
}

func TestJournalSinceAndLimit(t *testing.T) {
	j := NewJournal(10)
	for i := 1; i <= 6; i++ {
		j.Record(Event{Kind: "e", N: i})
	}
	if got := j.Since(4, 0); len(got) != 2 || got[0].N != 5 {
		t.Fatalf("since(4) = %+v", got)
	}
	// Limit keeps the newest events.
	if got := j.Since(0, 2); len(got) != 2 || got[0].N != 5 || got[1].N != 6 {
		t.Fatalf("limit=2 = %+v", got)
	}
	if got := j.Since(100, 0); len(got) != 0 {
		t.Fatalf("since(100) = %+v", got)
	}
}

func TestSnapshotJSONDeterministicShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	r.Gauge("g").Set(1.5)
	r.Histogram("h", 1, 2).Observe(3)
	r.Record(Event{Kind: "chunk-fit", Site: 1, Value: 0.1})

	s := r.Snapshot()
	if s.Counters["a.one"] != 1 || s.Counters["b.two"] != 2 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Journal.Len != 1 || s.Journal.LastSeq != 1 {
		t.Fatalf("journal info = %+v", s.Journal)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Map keys marshal sorted, so a.one precedes b.two.
	txt := string(raw)
	if !strings.Contains(txt, `"a.one":1`) ||
		strings.Index(txt, "a.one") > strings.Index(txt, "b.two") {
		t.Fatalf("snapshot JSON not in sorted key order: %s", txt)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Histograms["h"].Overflow != 1 {
		t.Fatalf("round-trip lost histogram overflow: %+v", back.Histograms["h"])
	}
	if names := r.CounterNames(); len(names) != 2 || names[0] != "a.one" {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", 0.5)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 2))
				r.Record(Event{Kind: "e", Site: id})
				r.Gauge("g").Add(1)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*per {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("h").Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d", got)
	}
	if got := r.Gauge("g").Value(); got != goroutines*per {
		t.Fatalf("gauge = %v", got)
	}
	if got := r.Journal().LastSeq(); got != goroutines*per {
		t.Fatalf("journal seq = %d", got)
	}
}

// BenchmarkDisabledCounter pins constraint 2: the disabled path is a nil
// check. On any machine this is well under a nanosecond per call.
func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("h", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
