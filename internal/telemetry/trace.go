package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Tracing follows every chunk from the record that opened it at a site to
// the moment the coordinator's global mixture reflects it. A trace is
// minted per chunk at the site; child spans cover the chunk test, J_fit
// prune fallback, the EM fit, outbox enqueue, each wire send (including
// retransmits), the coordinator WAL append, the dedupe verdict, the apply
// and the incremental remerge. The same three design constraints as the
// rest of the package apply:
//
//  1. Tracing must never change clustering output — spans only read
//     values and timestamps the algorithms already produced.
//  2. Disabled tracing costs a nil check: every method is safe on a nil
//     *Tracer, and instrumented layers resolve the tracer pointer once.
//  3. Stdlib only, concurrent-safe. Traces are per-chunk (not per-record),
//     so a single mutex is fine; nothing here runs in the record hot path.
//
// Time is a float64 in seconds from an injectable clock: netsim's virtual
// clock in tests and DST (deterministic traces), wall clock in daemons.

// Span is one timed step in a trace. Parent is 0 for the root span; all
// other parents resolve to another span ID inside the same trace.
type Span struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Site   int     `json:"site,omitempty"`
	Model  int     `json:"model,omitempty"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	N      int     `json:"n,omitempty"`
	Note   string  `json:"note,omitempty"`
}

// Trace is the causal record of one chunk. Origin is true in the process
// that minted the trace (the site): only origin traces know the ingest and
// decision times, so cross-process coordinators (netio server side) track
// apply→visible lag only.
type Trace struct {
	ID        uint64  `json:"id"`
	Site      int     `json:"site"`
	Chunk     int     `json:"chunk"`
	Origin    bool    `json:"origin"`
	IngestT   float64 `json:"ingest_t"`
	DecisionT float64 `json:"decision_t"`
	VisibleT  float64 `json:"visible_t"`
	Completed bool    `json:"completed"`
	Spans     []Span  `json:"spans"`
}

// lag is the trace's ingest→global-visibility latency (origin traces) or
// first-span→visibility latency (traces reconstructed from the wire).
func (t *Trace) lag() float64 {
	if t.Origin {
		return t.VisibleT - t.IngestT
	}
	if len(t.Spans) > 0 {
		return t.VisibleT - t.Spans[0].Start
	}
	return 0
}

// SpanRef is a begun, not-yet-ended span. The zero value (from a nil
// tracer) is inert: End on it is a no-op.
type SpanRef struct {
	t     *Tracer
	trace uint64
	span  uint64
	start float64
}

// TraceOptions tunes EnableTracing.
type TraceOptions struct {
	// Clock returns the current time in seconds. Defaults to wall clock;
	// the facade overrides it with netsim's virtual clock.
	Clock func() float64
	// MaxActive bounds the in-memory trace table; the oldest trace is
	// evicted first (default 4096).
	MaxActive int
	// SlowestN bounds the slowest-trace exemplar reservoir (default 16).
	SlowestN int
}

const (
	defaultMaxActive = 4096
	defaultSlowestN  = 16
)

// Tracer mints traces and spans and derives the freshness-SLO histograms.
// All methods are nil-receiver safe; a nil *Tracer is the disabled state.
type Tracer struct {
	mu         sync.Mutex
	clock      func() float64
	nextID     uint64
	maxActive  int
	slowestN   int
	active     map[uint64]*Trace
	order      []uint64 // FIFO eviction order of active trace IDs
	slowest    []*Trace // completed exemplars, descending lag
	spanCounts map[string]int64
	evicted    uint64

	// Freshness SLO histograms, registered on the owning registry.
	histDecision *Histogram // trace.ingest_to_decision_seconds
	histApply    *Histogram // trace.decision_to_apply_seconds
	histVisible  *Histogram // trace.apply_to_visible_seconds
}

// sloBounds are the lag histogram bucket bounds in seconds: sub-millisecond
// in-process hops up through minute-scale outage recovery.
var sloBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}

// EnableTracing switches the registry's tracing on and returns the tracer.
// Idempotent: a second call returns the existing tracer unchanged.
func (r *Registry) EnableTracing(opts TraceOptions) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.tracer != nil {
		t := r.tracer
		r.mu.Unlock()
		return t
	}
	t := &Tracer{
		clock:      opts.Clock,
		maxActive:  opts.MaxActive,
		slowestN:   opts.SlowestN,
		active:     make(map[uint64]*Trace),
		spanCounts: make(map[string]int64),
	}
	if t.clock == nil {
		t.clock = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	if t.maxActive <= 0 {
		t.maxActive = defaultMaxActive
	}
	if t.slowestN <= 0 {
		t.slowestN = defaultSlowestN
	}
	r.tracer = t
	r.mu.Unlock()
	t.histDecision = r.Histogram("trace.ingest_to_decision_seconds", sloBounds...)
	t.histApply = r.Histogram("trace.decision_to_apply_seconds", sloBounds...)
	t.histVisible = r.Histogram("trace.apply_to_visible_seconds", sloBounds...)
	return t
}

// Tracer returns the registry's tracer, or nil when tracing is disabled
// (or the registry itself is nil). Layers resolve this once at
// construction, exactly like the other instruments.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// SetClock swaps the tracer's time source (virtual clock injection).
func (t *Tracer) SetClock(clock func() float64) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Now reads the tracer's clock (0 on nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	return c()
}

// mint returns the next ID. Trace and span IDs share one sequence, so a
// span ID is unique across the process and parents are unambiguous.
func (t *Tracer) mint() uint64 {
	t.nextID++
	return t.nextID
}

// insert adds tr to the active table, evicting the oldest trace when full.
func (t *Tracer) insert(tr *Trace) {
	for len(t.active) >= t.maxActive && len(t.order) > 0 {
		victim := t.order[0]
		t.order = t.order[1:]
		if _, ok := t.active[victim]; ok {
			delete(t.active, victim)
			t.evicted++
		}
	}
	t.active[tr.ID] = tr
	t.order = append(t.order, tr.ID)
}

// ensure returns the trace for id, materializing a non-origin stub when
// the ID arrived over the wire from a process that minted it elsewhere.
func (t *Tracer) ensure(id uint64) *Trace {
	tr := t.active[id]
	if tr == nil {
		tr = &Trace{ID: id}
		t.insert(tr)
	}
	return tr
}

// StartTrace mints a trace for one chunk at a site, with a root "chunk"
// span opened at ingestT. Returns the trace ID and root span ID (0, 0 on a
// nil tracer).
func (t *Tracer) StartTrace(site, chunk int, ingestT float64) (traceID, rootSpan uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &Trace{ID: t.mint(), Site: site, Chunk: chunk, Origin: true, IngestT: ingestT}
	root := Span{ID: t.mint(), Name: "chunk", Site: site, Start: ingestT, End: ingestT}
	tr.Spans = append(tr.Spans, root)
	t.spanCounts["chunk"]++
	t.insert(tr)
	return tr.ID, root.ID
}

// Begin opens a span under parent in trace traceID, stamped at the
// tracer's current clock. A zero traceID yields an inert ref.
func (t *Tracer) Begin(traceID, parent uint64, name string, site, model int) SpanRef {
	if t == nil || traceID == 0 {
		return SpanRef{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ref := SpanRef{t: t, trace: traceID, span: t.mint(), start: t.clock()}
	tr := t.ensure(traceID)
	tr.Spans = append(tr.Spans, Span{
		ID: ref.span, Parent: parent, Name: name,
		Site: site, Model: model, Start: ref.start, End: ref.start,
	})
	t.spanCounts[name]++
	return ref
}

// Context returns the (trace ID, span ID) pair of a begun span, for
// propagating it as the parent of deeper spans. Zeros on the zero ref.
func (ref SpanRef) Context() (traceID, spanID uint64) { return ref.trace, ref.span }

// Start returns the clock reading when the span was begun (0 on the zero
// ref).
func (ref SpanRef) Start() float64 { return ref.start }

// End closes a begun span, recording a count and note. No-op on the zero
// SpanRef.
func (ref SpanRef) End(n int, note string) {
	t := ref.t
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.active[ref.trace]
	if tr == nil {
		return // evicted mid-span
	}
	for i := len(tr.Spans) - 1; i >= 0; i-- {
		if tr.Spans[i].ID == ref.span {
			tr.Spans[i].End = t.clock()
			tr.Spans[i].N = n
			tr.Spans[i].Note = note
			return
		}
	}
}

// Record adds a fully-formed span with explicit start/end times — used
// where the duration is known at creation (netsim schedules the delivery
// time when it sends). Returns the span ID (0 on nil tracer or traceID 0).
func (t *Tracer) Record(traceID, parent uint64, name string, site, model int, start, end float64, n int, note string) uint64 {
	if t == nil || traceID == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.ensure(traceID)
	id := t.mint()
	tr.Spans = append(tr.Spans, Span{
		ID: id, Parent: parent, Name: name,
		Site: site, Model: model, Start: start, End: end, N: n, Note: note,
	})
	t.spanCounts[name]++
	return id
}

// FinishDecision marks the site-side decision point of a trace and
// observes the ingest→site-decision lag.
func (t *Tracer) FinishDecision(traceID uint64, decisionT float64) {
	if t == nil || traceID == 0 {
		return
	}
	t.mu.Lock()
	tr := t.active[traceID]
	var origin bool
	var lag float64
	if tr != nil {
		tr.DecisionT = decisionT
		origin = tr.Origin
		lag = decisionT - tr.IngestT
		// The root "chunk" span covers the site-side processing: close it
		// at the decision point.
		for i := range tr.Spans {
			if tr.Spans[i].Parent == 0 {
				tr.Spans[i].End = decisionT
				break
			}
		}
	}
	t.mu.Unlock()
	if origin {
		t.histDecision.Observe(lag)
	}
}

// CompleteVisible marks a trace's update as applied into the global
// mixture: applyStart is when the coordinator began applying, visibleT
// when the new mixture version existed. Observes the site-decision→apply
// and apply→visible lags and refreshes the slowest-trace reservoir. A
// trace can complete more than once (a chunk may emit several updates and
// later deletions); each apply is a visibility event.
func (t *Tracer) CompleteVisible(traceID uint64, applyStart, visibleT float64) {
	if t == nil || traceID == 0 {
		return
	}
	t.mu.Lock()
	tr := t.ensure(traceID)
	tr.VisibleT = visibleT
	tr.Completed = true
	origin := tr.Origin
	decisionLag := applyStart - tr.DecisionT
	t.updateSlowest(tr)
	t.mu.Unlock()
	if origin {
		// Only the minting process knows the decision time; a coordinator
		// reached over TCP has a different clock and skips this lag.
		t.histApply.Observe(decisionLag)
	}
	t.histVisible.Observe(visibleT - applyStart)
}

// updateSlowest inserts a snapshot of tr into the slowest-N reservoir
// (descending lag, deduped by trace ID). Caller holds t.mu.
func (t *Tracer) updateSlowest(tr *Trace) {
	cp := *tr
	cp.Spans = append([]Span(nil), tr.Spans...)
	for i, s := range t.slowest {
		if s.ID == cp.ID {
			t.slowest = append(t.slowest[:i], t.slowest[i+1:]...)
			break
		}
	}
	t.slowest = append(t.slowest, &cp)
	sort.SliceStable(t.slowest, func(i, j int) bool { return t.slowest[i].lag() > t.slowest[j].lag() })
	if len(t.slowest) > t.slowestN {
		t.slowest = t.slowest[:t.slowestN]
	}
}

// SpanCount returns how many spans named name have been recorded — the
// reconciliation hook for DST's trace-conservation invariant (e.g.
// SpanCount("wire-send") must match the link-layer message counter).
func (t *Tracer) SpanCount(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanCounts[name]
}

// TraceByID returns a deep copy of one trace (ok=false if unknown or
// evicted).
func (t *Tracer) TraceByID(id uint64) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.active[id]
	if tr == nil {
		return Trace{}, false
	}
	cp := *tr
	cp.Spans = append([]Span(nil), tr.Spans...)
	return cp, true
}

// TracerSnapshot is the JSON document /debug/traces serves.
type TracerSnapshot struct {
	Now        float64          `json:"now"`
	Active     int              `json:"active"`
	Evicted    uint64           `json:"evicted"`
	SpanCounts map[string]int64 `json:"span_counts"`
	// Slowest is the bounded reservoir of slowest ingest→visible exemplar
	// traces, worst first.
	Slowest []Trace `json:"slowest"`
}

// Snapshot captures the tracer state: span-name counts and the slowest-N
// exemplars. Safe on nil (empty snapshot).
func (t *Tracer) Snapshot() TracerSnapshot {
	s := TracerSnapshot{SpanCounts: map[string]int64{}, Slowest: []Trace{}}
	if t == nil {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Now = t.clock()
	s.Active = len(t.active)
	s.Evicted = t.evicted
	for name, n := range t.spanCounts {
		s.SpanCounts[name] = n
	}
	for _, tr := range t.slowest {
		cp := *tr
		cp.Spans = append([]Span(nil), tr.Spans...)
		s.Slowest = append(s.Slowest, cp)
	}
	return s
}
