package telemetry

import (
	"testing"
)

// manualClock is a settable virtual clock for deterministic tracer tests.
type manualClock struct{ t float64 }

func (c *manualClock) now() float64 { return c.t }

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if id, root := tr.StartTrace(1, 2, 0); id != 0 || root != 0 {
		t.Fatal("nil StartTrace minted IDs")
	}
	ref := tr.Begin(1, 0, "x", 0, 0)
	ref.End(3, "note") // must not panic
	if tid, sid := ref.Context(); tid != 0 || sid != 0 {
		t.Fatal("zero SpanRef has context")
	}
	if tr.Record(1, 0, "x", 0, 0, 0, 1, 0, "") != 0 {
		t.Fatal("nil Record minted a span")
	}
	tr.FinishDecision(1, 2)
	tr.CompleteVisible(1, 2, 3)
	tr.SetClock(func() float64 { return 9 })
	if tr.Now() != 0 {
		t.Fatal("nil Now")
	}
	if tr.SpanCount("x") != 0 {
		t.Fatal("nil SpanCount")
	}
	if _, ok := tr.TraceByID(1); ok {
		t.Fatal("nil TraceByID found a trace")
	}
	if s := tr.Snapshot(); s.Active != 0 || len(s.SpanCounts) != 0 || len(s.Slowest) != 0 {
		t.Fatalf("nil Snapshot not empty: %+v", s)
	}
	var r *Registry
	if r.EnableTracing(TraceOptions{}) != nil || r.Tracer() != nil {
		t.Fatal("nil registry produced a tracer")
	}
}

func TestEnableTracingIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Tracer() != nil {
		t.Fatal("tracer enabled before EnableTracing")
	}
	tr := r.EnableTracing(TraceOptions{MaxActive: 10})
	if tr == nil || r.Tracer() != tr {
		t.Fatal("EnableTracing did not install the tracer")
	}
	if again := r.EnableTracing(TraceOptions{MaxActive: 999}); again != tr {
		t.Fatal("second EnableTracing replaced the tracer")
	}
	// The SLO histograms are registered on enable.
	for _, name := range []string{
		"trace.ingest_to_decision_seconds",
		"trace.decision_to_apply_seconds",
		"trace.apply_to_visible_seconds",
	} {
		if _, ok := r.Snapshot().Histograms[name]; !ok {
			t.Fatalf("missing SLO histogram %q", name)
		}
	}
}

// TestTracerLifecycle walks one chunk through the full pipeline on a
// virtual clock and checks the trace, the span chain, and the three
// freshness-SLO lags.
func TestTracerLifecycle(t *testing.T) {
	clk := &manualClock{}
	r := NewRegistry()
	tr := r.EnableTracing(TraceOptions{Clock: clk.now})

	clk.t = 1.0
	traceID, root := tr.StartTrace(3, 7, clk.t)
	if traceID == 0 || root == 0 || traceID == root {
		t.Fatalf("StartTrace ids: trace=%d root=%d", traceID, root)
	}

	clk.t = 1.5
	fit := tr.Begin(traceID, root, "em-fit", 3, 2)
	clk.t = 2.0
	fit.End(4096, "warm")

	tr.FinishDecision(traceID, 2.5) // ingest→decision = 1.5s

	// Wire send with explicit times (netsim knows the delivery time).
	tr.Record(traceID, root, "wire-send", 3, 2, 2.5, 2.6, 200, "")

	clk.t = 4.0
	tr.CompleteVisible(traceID, 4.0, 4.25) // decision→apply = 1.5s, apply→visible = 0.25s

	got, ok := tr.TraceByID(traceID)
	if !ok {
		t.Fatal("trace vanished")
	}
	if got.Site != 3 || got.Chunk != 7 || !got.Origin || !got.Completed {
		t.Fatalf("trace fields: %+v", got)
	}
	if got.IngestT != 1.0 || got.DecisionT != 2.5 || got.VisibleT != 4.25 {
		t.Fatalf("trace times: %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("span count = %d", len(got.Spans))
	}
	rootSpan, fitSpan, sendSpan := got.Spans[0], got.Spans[1], got.Spans[2]
	if rootSpan.Name != "chunk" || rootSpan.Parent != 0 || rootSpan.End != 2.5 {
		t.Fatalf("root span: %+v (FinishDecision must close it)", rootSpan)
	}
	if fitSpan.Name != "em-fit" || fitSpan.Parent != root ||
		fitSpan.Start != 1.5 || fitSpan.End != 2.0 || fitSpan.N != 4096 || fitSpan.Note != "warm" {
		t.Fatalf("fit span: %+v", fitSpan)
	}
	if sendSpan.Start != 2.5 || sendSpan.End != 2.6 || sendSpan.N != 200 {
		t.Fatalf("send span: %+v", sendSpan)
	}
	if tr.SpanCount("chunk") != 1 || tr.SpanCount("em-fit") != 1 || tr.SpanCount("wire-send") != 1 {
		t.Fatal("span counts off")
	}

	check := func(name string, wantSum float64) {
		h := r.Snapshot().Histograms[name]
		if h.Count != 1 || h.Sum != wantSum {
			t.Fatalf("%s: count=%d sum=%v, want sum %v", name, h.Count, h.Sum, wantSum)
		}
	}
	check("trace.ingest_to_decision_seconds", 1.5)
	check("trace.decision_to_apply_seconds", 1.5)
	check("trace.apply_to_visible_seconds", 0.25)
}

// TestTracerWireArrivalStub covers the coordinator side of a TCP
// deployment: a trace ID arrives on the wire from a process that minted it
// elsewhere, so the local tracer materializes a non-origin stub and tracks
// only the apply→visible lag (the other clocks aren't comparable).
func TestTracerWireArrivalStub(t *testing.T) {
	clk := &manualClock{t: 10}
	r := NewRegistry()
	tr := r.EnableTracing(TraceOptions{Clock: clk.now})

	const foreignTrace, foreignSpan = 500, 501
	ref := tr.Begin(foreignTrace, foreignSpan, "wal-append", 2, 1)
	clk.t = 10.5
	ref.End(64, "")
	tr.CompleteVisible(foreignTrace, 10.5, 11.0)

	got, ok := tr.TraceByID(foreignTrace)
	if !ok || got.Origin {
		t.Fatalf("stub trace: ok=%v origin=%v", ok, got.Origin)
	}
	if got.Spans[0].Parent != foreignSpan {
		t.Fatalf("wire parent lost: %+v", got.Spans[0])
	}
	snap := r.Snapshot()
	if h := snap.Histograms["trace.apply_to_visible_seconds"]; h.Count != 1 || h.Sum != 0.5 {
		t.Fatalf("apply→visible: %+v", h)
	}
	// Ingest/decision lags need the origin clock — a stub must not observe.
	if h := snap.Histograms["trace.decision_to_apply_seconds"]; h.Count != 0 {
		t.Fatalf("non-origin trace polluted decision→apply: %+v", h)
	}
}

func TestTracerEviction(t *testing.T) {
	clk := &manualClock{}
	r := NewRegistry()
	tr := r.EnableTracing(TraceOptions{Clock: clk.now, MaxActive: 3})

	var first uint64
	var firstRef SpanRef
	for i := 0; i < 5; i++ {
		id, root := tr.StartTrace(1, i, clk.t)
		if i == 0 {
			first = id
			firstRef = tr.Begin(id, root, "em-fit", 1, 0)
		}
	}
	s := tr.Snapshot()
	if s.Active != 3 {
		t.Fatalf("active = %d, want 3", s.Active)
	}
	if s.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", s.Evicted)
	}
	if _, ok := tr.TraceByID(first); ok {
		t.Fatal("oldest trace not evicted")
	}
	firstRef.End(1, "") // ending a span on an evicted trace is a no-op
	if tr.SpanCount("chunk") != 5 {
		t.Fatal("eviction must not lose cumulative span counts")
	}
}

func TestTracerSlowestReservoir(t *testing.T) {
	clk := &manualClock{}
	r := NewRegistry()
	tr := r.EnableTracing(TraceOptions{Clock: clk.now, SlowestN: 2})

	mk := func(ingest, visible float64) uint64 {
		clk.t = ingest
		id, _ := tr.StartTrace(1, 0, ingest)
		tr.FinishDecision(id, ingest)
		tr.CompleteVisible(id, visible, visible)
		return id
	}
	a := mk(0, 1) // lag 1
	mk(0, 5)      // lag 5
	mk(0, 3)      // lag 3 — evicts the lag-1 exemplar

	s := tr.Snapshot()
	if len(s.Slowest) != 2 {
		t.Fatalf("reservoir size = %d", len(s.Slowest))
	}
	if s.Slowest[0].VisibleT != 5 || s.Slowest[1].VisibleT != 3 {
		t.Fatalf("not worst-first: %+v", s.Slowest)
	}
	for _, e := range s.Slowest {
		if e.ID == a {
			t.Fatal("lag-1 trace should have been displaced")
		}
	}
	// Re-completing an already-held trace dedupes rather than duplicating.
	tr.CompleteVisible(s.Slowest[0].ID, 6, 6)
	if s = tr.Snapshot(); len(s.Slowest) != 2 {
		t.Fatalf("re-completion duplicated the exemplar: %d entries", len(s.Slowest))
	}
}

// TestTracerSnapshotIsolation pins that snapshots and TraceByID return deep
// copies: mutating them must not reach the tracer's internal state.
func TestTracerSnapshotIsolation(t *testing.T) {
	clk := &manualClock{}
	r := NewRegistry()
	tr := r.EnableTracing(TraceOptions{Clock: clk.now})
	id, root := tr.StartTrace(1, 0, 0)
	tr.Begin(id, root, "em-fit", 1, 0).End(1, "")
	tr.FinishDecision(id, 1)
	tr.CompleteVisible(id, 1, 2)

	cp, _ := tr.TraceByID(id)
	cp.Spans[0].Name = "mutated"
	s := tr.Snapshot()
	s.Slowest[0].Spans[0].Name = "mutated-too"
	s.SpanCounts["chunk"] = 999

	fresh, _ := tr.TraceByID(id)
	if fresh.Spans[0].Name != "chunk" {
		t.Fatal("TraceByID returned shared span storage")
	}
	if got := tr.Snapshot(); got.Slowest[0].Spans[0].Name != "chunk" || got.SpanCounts["chunk"] != 1 {
		t.Fatal("Snapshot returned shared storage")
	}
}
