package transport

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// FuzzDecode hammers the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to a decodable message.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid messages of each kind plus classic corruptions.
	rng := rand.New(rand.NewSource(1))
	valid := Encode(Message{Kind: MsgNewModel, SiteID: 1, ModelID: 2, Count: 3, Mixture: sampleMixture(rng, 2, 3)})
	f.Add(valid)
	f.Add(Encode(Message{Kind: MsgWeightUpdate, SiteID: 1, ModelID: 2, Count: 3}))
	f.Add(Encode(Message{Kind: MsgDeletion, SiteID: 9, ModelID: 1, Count: -50}))
	validV2 := Encode(Message{Kind: MsgNewModel, SiteID: 1, ModelID: 3, Count: 9, Epoch: 2, Seq: 5, Mixture: sampleMixture(rng, 2, 2)})
	f.Add(validV2)
	f.Add(Encode(Message{Kind: MsgWeightUpdate, SiteID: 1, ModelID: 2, Count: 3, Epoch: 1, Seq: 1}))
	f.Add(validV2[:headerSize+v2ExtraSize-3]) // v2 header cut inside seq
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(valid[:len(valid)-4])
	corrupt := append([]byte(nil), valid...)
	corrupt[0] = 200
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted messages must round-trip.
		re := Encode(msg)
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if msg2.Kind != msg.Kind || msg2.SiteID != msg.SiteID ||
			msg2.ModelID != msg.ModelID || msg2.Count != msg.Count ||
			msg2.Epoch != msg.Epoch || msg2.Seq != msg.Seq {
			t.Fatalf("round trip changed header: %+v vs %+v", msg2, msg)
		}
	})
}

// TestQuickEncodeDecode is the property-test counterpart: random valid
// messages always round-trip bit-exactly.
func TestQuickEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(siteID, modelID int32, count int64, kRaw, dRaw uint8) bool {
		k := int(kRaw%4) + 1
		d := int(dRaw%5) + 1
		m := Message{
			Kind:    MsgNewModel,
			SiteID:  siteID,
			ModelID: modelID,
			Count:   count,
			Mixture: sampleMixture(rng, k, d),
		}
		buf := Encode(m)
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.SiteID != m.SiteID || got.ModelID != m.ModelID || got.Count != m.Count {
			return false
		}
		// Means and covariances must round-trip bit-exactly; weights are
		// re-normalized on decode, so they round-trip within float noise.
		if got.Mixture.K() != m.Mixture.K() || got.Mixture.Dim() != m.Mixture.Dim() {
			return false
		}
		for j := 0; j < m.Mixture.K(); j++ {
			if !got.Mixture.Component(j).Equal(m.Mixture.Component(j), 0) {
				return false
			}
			if math.Abs(got.Mixture.Weight(j)-m.Mixture.Weight(j)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
