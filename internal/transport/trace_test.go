package transport

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestGoldenV1Bytes pins the exact v1 wire encoding of an untraced weight
// update. Any byte-level drift here would break interoperability with
// deployed peers, so the expectation is hard-coded rather than derived.
func TestGoldenV1Bytes(t *testing.T) {
	m := Message{Kind: MsgWeightUpdate, SiteID: 4, ModelID: 2, Count: 300}
	want := []byte{
		byte(MsgWeightUpdate), // kind
		4, 0, 0, 0,            // site (LE)
		2, 0, 0, 0, // model (LE)
		0x2C, 0x01, 0, 0, 0, 0, 0, 0, // count = 300 (LE)
	}
	if got := Encode(m); !bytes.Equal(got, want) {
		t.Fatalf("v1 encoding drifted:\n got  %x\n want %x", got, want)
	}
}

// TestTraceSuffixRoundTrip covers the suffix across all message kinds and
// framings: WireSize accounts for the 16 bytes, Decode restores the IDs,
// and a zero trace context leaves the frame untouched.
func TestTraceSuffixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	msgs := []Message{
		{Kind: MsgWeightUpdate, SiteID: 1, ModelID: 2, Count: 10, TraceID: 7, SpanID: 9},
		{Kind: MsgDeletion, SiteID: 3, ModelID: 1, Count: -40, Epoch: 2, Seq: 5, TraceID: 1 << 40, SpanID: 1},
		{Kind: MsgNewModel, SiteID: 2, ModelID: 6, Count: 800, Epoch: 1, Seq: 9,
			Mixture: sampleMixture(rng, 2, 3), TraceID: 12345, SpanID: 0},
		{Kind: MsgWeightUpdate, SiteID: 5, ModelID: 5, Count: 1, TraceID: 0, SpanID: 77}, // span without trace
	}
	for _, m := range msgs {
		buf := Encode(m)
		if len(buf) != m.WireSize() {
			t.Fatalf("%v traced: encoded %d bytes, WireSize says %d", m.Kind, len(buf), m.WireSize())
		}
		untraced := m
		untraced.TraceID, untraced.SpanID = 0, 0
		if got := len(buf) - len(Encode(untraced)); got != TraceSuffixSize {
			t.Fatalf("%v: suffix overhead = %d, want %d", m.Kind, got, TraceSuffixSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.TraceID != m.TraceID || got.SpanID != m.SpanID {
			t.Fatalf("%v: trace context lost: got (%d,%d), want (%d,%d)",
				m.Kind, got.TraceID, got.SpanID, m.TraceID, m.SpanID)
		}
		if got.Kind != m.Kind || got.SiteID != m.SiteID || got.Count != m.Count ||
			got.Epoch != m.Epoch || got.Seq != m.Seq {
			t.Fatalf("%v: payload diverged: %+v", m.Kind, got)
		}
	}
}

// TestAppendTraceSuffixAtTransmitTime mirrors what the TCP conn layer does:
// the queued payload is encoded untraced, and the suffix is appended per
// transmission after the handshake negotiates the capability.
func TestAppendTraceSuffixAtTransmitTime(t *testing.T) {
	base := Encode(Message{Kind: MsgWeightUpdate, SiteID: 2, ModelID: 3, Count: 50, Epoch: 1, Seq: 4})
	wire := AppendTraceSuffix(append([]byte(nil), base...), 99, 100)
	if len(wire) != len(base)+TraceSuffixSize {
		t.Fatalf("suffix size = %d", len(wire)-len(base))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 99 || got.SpanID != 100 {
		t.Fatalf("transmit-time suffix lost: (%d,%d)", got.TraceID, got.SpanID)
	}
	// The original queued payload is untouched and still decodes untraced.
	plain, err := Decode(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceID != 0 || plain.SpanID != 0 {
		t.Fatalf("untraced payload grew trace context: %+v", plain)
	}
}

// TestTraceSuffixUpdateConversion checks the trace context survives the
// site.Update <-> Message conversions used by every runtime.
func TestTraceSuffixUpdateConversion(t *testing.T) {
	m := Message{Kind: MsgWeightUpdate, SiteID: 1, ModelID: 2, Count: 5, TraceID: 31, SpanID: 32}
	u := m.ToSiteUpdate()
	if u.TraceID != 31 || u.SpanID != 32 {
		t.Fatalf("ToSiteUpdate dropped trace context: %+v", u)
	}
	back := FromSiteUpdate(u)
	if back.TraceID != 31 || back.SpanID != 32 {
		t.Fatalf("FromSiteUpdate dropped trace context: %+v", back)
	}
}
