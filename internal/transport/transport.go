// Package transport defines the wire messages exchanged between remote
// sites and the coordinator, with a deterministic binary encoding. The
// communication-cost experiments (Figure 2) report exact encoded byte
// counts, so the encoding *is* the cost model: a NewModel message carries
// the full synopsis (weights, means, packed covariances — Section 5.3's
// "synopsis-based information exchange"), a WeightUpdate or Deletion
// message carries 21 bytes.
//
// # Wire versions
//
// Version 1 (the original format) starts with the kind byte (1–3) and has
// no delivery metadata. Version 2 prefixes the same layout with the marker
// byte 0xC2 and inserts a site epoch (uint32) and a per-site monotone
// sequence number (uint64) after the header, making every message
// idempotently identifiable for at-least-once delivery with receiver-side
// dedupe. Encode picks v2 exactly when Seq or Epoch is set, so legacy
// senders (and the byte-for-byte cost model of the figures) are untouched;
// Decode accepts both.
//
// # Trace suffix
//
// A traced message (TraceID or SpanID set) appends a 16-byte suffix —
// trace ID then parent span ID, both uint64 little-endian — after the
// payload. The suffix rides behind every existing layout, so untraced
// bytes are bit-identical to what they always were; Decode recognizes the
// suffix by the exact 16 bytes remaining after the body. Over TCP the
// suffix is additionally gated by a handshake capability (see
// internal/netio), so an unupgraded coordinator never sees it.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// MsgKind discriminates wire messages.
type MsgKind uint8

const (
	// MsgNewModel carries full mixture parameters.
	MsgNewModel MsgKind = iota + 1
	// MsgWeightUpdate shifts weight to an already-transmitted model.
	MsgWeightUpdate
	// MsgDeletion removes weight (sliding windows, Section 7).
	MsgDeletion
	// MsgHello opens a connection: the site announces its identity so a
	// recovered coordinator can reply with the site's durable (epoch, seq)
	// high-water mark and the site retransmits only the unapplied suffix of
	// its outbox. Carries SiteID only; Count, ModelID and Mixture are unused.
	MsgHello
)

func (k MsgKind) String() string {
	switch k {
	case MsgNewModel:
		return "new-model"
	case MsgWeightUpdate:
		return "weight-update"
	case MsgDeletion:
		return "deletion"
	case MsgHello:
		return "hello"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Message is one site→coordinator datagram.
type Message struct {
	Kind    MsgKind
	SiteID  int32
	ModelID int32
	Count   int64
	// Epoch identifies the sender's incarnation: a site that crashes and
	// restarts resumes with a higher epoch, telling the coordinator to
	// discard state from the dead incarnation. Zero (with Seq zero) selects
	// the legacy v1 encoding.
	Epoch uint32
	// Seq is the per-site monotone delivery sequence number (1-based).
	// Receivers drop (siteID, epoch, seq) duplicates, so retransmitted
	// frames are exactly-once in effect. Zero (with Epoch zero) selects the
	// legacy v1 encoding.
	Seq uint64
	// TraceID and SpanID carry the causal trace context of the chunk that
	// produced this message (see internal/telemetry): the trace minted at
	// the site and the parent span the receiver should hang its own spans
	// under. Both zero (the default) means untraced and the encoding emits
	// no suffix, keeping untraced wire bytes bit-identical to earlier
	// releases.
	TraceID uint64
	SpanID  uint64
	// Mixture is present iff Kind == MsgNewModel.
	Mixture *gaussian.Mixture
}

// ErrTruncated is returned by Decode for short buffers.
var ErrTruncated = errors.New("transport: truncated message")

const (
	headerSize = 1 + 4 + 4 + 8 // kind + site + model + count

	// verMarker introduces a v2 message; it collides with no MsgKind.
	verMarker byte = 0xC2
	// v2ExtraSize is the v2 overhead: marker + epoch + seq.
	v2ExtraSize = 1 + 4 + 8
)

// TraceSuffixSize is the encoded size of the trace context suffix a traced
// message carries: trace ID + parent span ID, uint64 little-endian each.
const TraceSuffixSize = 8 + 8

// versioned reports whether the message needs the v2 encoding.
func (m Message) versioned() bool { return m.Seq != 0 || m.Epoch != 0 }

// traced reports whether the message carries the trace suffix.
func (m Message) traced() bool { return m.TraceID != 0 || m.SpanID != 0 }

// WireSize returns the exact encoded size in bytes.
func (m Message) WireSize() int {
	n := headerSize
	if m.versioned() {
		n += v2ExtraSize
	}
	if m.traced() {
		n += TraceSuffixSize
	}
	if m.Kind == MsgNewModel && m.Mixture != nil {
		k, d := m.Mixture.K(), m.Mixture.Dim()
		n += 4 + 4 // K, d
		n += k * 8 // weights
		n += k * d * 8
		n += k * linalg.PackedLen(d) * 8
	}
	return n
}

// Encode serializes the message (little-endian, fixed layout). Messages
// with a Seq or Epoch use the v2 framing; all others stay v1.
func Encode(m Message) []byte {
	buf := make([]byte, 0, m.WireSize())
	if m.versioned() {
		buf = append(buf, verMarker)
	}
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.SiteID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ModelID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Count))
	if m.versioned() {
		buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	}
	if m.Kind == MsgNewModel && m.Mixture != nil {
		k, d := m.Mixture.K(), m.Mixture.Dim()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
		for j := 0; j < k; j++ {
			buf = appendFloat(buf, m.Mixture.Weight(j))
		}
		for j := 0; j < k; j++ {
			for _, v := range m.Mixture.Component(j).Mean() {
				buf = appendFloat(buf, v)
			}
		}
		for j := 0; j < k; j++ {
			for _, v := range m.Mixture.Component(j).Cov().Packed() {
				buf = appendFloat(buf, v)
			}
		}
	}
	if m.traced() {
		buf = AppendTraceSuffix(buf, m.TraceID, m.SpanID)
	}
	return buf
}

// AppendTraceSuffix appends the 16-byte trace context suffix to an
// already-encoded payload. Conn-layer senders use it to attach trace
// context at transmit time, after the handshake has negotiated the
// capability, without re-encoding the queued payload.
func AppendTraceSuffix(buf []byte, traceID, spanID uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, traceID)
	return binary.LittleEndian.AppendUint64(buf, spanID)
}

// Decode parses a message produced by Encode, accepting both the legacy
// v1 framing and the v2 framing carrying epoch and sequence number.
func Decode(b []byte) (Message, error) {
	var m Message
	v2 := len(b) > 0 && b[0] == verMarker
	if v2 {
		if len(b) < headerSize+v2ExtraSize {
			return Message{}, ErrTruncated
		}
		b = b[1:] // kind/site/model/count sit at the v1 offsets now
	} else if len(b) < headerSize {
		return Message{}, ErrTruncated
	}
	m.Kind = MsgKind(b[0])
	m.SiteID = int32(binary.LittleEndian.Uint32(b[1:]))
	m.ModelID = int32(binary.LittleEndian.Uint32(b[5:]))
	m.Count = int64(binary.LittleEndian.Uint64(b[9:]))
	b = b[headerSize:]
	if v2 {
		m.Epoch = binary.LittleEndian.Uint32(b)
		m.Seq = binary.LittleEndian.Uint64(b[4:])
		b = b[4+8:]
	}
	switch m.Kind {
	case MsgWeightUpdate, MsgDeletion, MsgHello:
		m.readTraceSuffix(b)
		return m, nil
	case MsgNewModel:
	default:
		return Message{}, fmt.Errorf("transport: unknown kind %d", m.Kind)
	}
	if len(b) < 8 {
		return Message{}, ErrTruncated
	}
	k := int(binary.LittleEndian.Uint32(b))
	d := int(binary.LittleEndian.Uint32(b[4:]))
	b = b[8:]
	if k < 1 || d < 1 || k > 1<<20 || d > 1<<20 {
		return Message{}, fmt.Errorf("transport: implausible K=%d d=%d", k, d)
	}
	need := (k + k*d + k*linalg.PackedLen(d)) * 8
	if len(b) < need {
		return Message{}, ErrTruncated
	}
	weights := make([]float64, k)
	for j := range weights {
		weights[j] = readFloat(b)
		b = b[8:]
	}
	means := make([]linalg.Vector, k)
	for j := range means {
		means[j] = linalg.NewVector(d)
		for i := 0; i < d; i++ {
			means[j][i] = readFloat(b)
			b = b[8:]
		}
	}
	comps := make([]*gaussian.Component, k)
	for j := range comps {
		packed := make([]float64, linalg.PackedLen(d))
		for i := range packed {
			packed[i] = readFloat(b)
			b = b[8:]
		}
		cov := linalg.SymFromPacked(d, packed)
		c, err := gaussian.NewComponent(means[j], cov, 0)
		if err != nil {
			return Message{}, fmt.Errorf("transport: component %d: %w", j, err)
		}
		comps[j] = c
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return Message{}, fmt.Errorf("transport: %w", err)
	}
	m.Mixture = mix
	m.readTraceSuffix(b)
	return m, nil
}

// readTraceSuffix parses the optional 16-byte trace context from the
// bytes remaining after the message body. Anything other than exactly
// TraceSuffixSize remaining is treated as the historical "ignore trailing
// bytes" behavior, keeping Decode tolerant of unknown future extensions.
func (m *Message) readTraceSuffix(b []byte) {
	if len(b) != TraceSuffixSize {
		return
	}
	m.TraceID = binary.LittleEndian.Uint64(b)
	m.SpanID = binary.LittleEndian.Uint64(b[8:])
}

// FromSiteUpdate converts a site.Update into a wire message.
func FromSiteUpdate(u site.Update) Message {
	kind := MsgNewModel
	if u.Kind == site.WeightUpdate {
		kind = MsgWeightUpdate
	}
	return Message{
		Kind:    kind,
		SiteID:  int32(u.SiteID),
		ModelID: int32(u.ModelID),
		Count:   int64(u.Count),
		TraceID: u.TraceID,
		SpanID:  u.SpanID,
		Mixture: u.Mixture,
	}
}

// ToSiteUpdate converts a decoded message back for coordinator consumption.
// Deletion messages have no site.Update equivalent and must be routed to
// Coordinator.HandleDeletion by the caller.
func (m Message) ToSiteUpdate() site.Update {
	kind := site.NewModel
	if m.Kind == MsgWeightUpdate {
		kind = site.WeightUpdate
	}
	return site.Update{
		SiteID:  int(m.SiteID),
		ModelID: int(m.ModelID),
		Kind:    kind,
		Count:   int(m.Count),
		TraceID: m.TraceID,
		SpanID:  m.SpanID,
		Mixture: m.Mixture,
	}
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func readFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
