// Package transport defines the wire messages exchanged between remote
// sites and the coordinator, with a deterministic binary encoding. The
// communication-cost experiments (Figure 2) report exact encoded byte
// counts, so the encoding *is* the cost model: a NewModel message carries
// the full synopsis (weights, means, packed covariances — Section 5.3's
// "synopsis-based information exchange"), a WeightUpdate or Deletion
// message carries 21 bytes.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// MsgKind discriminates wire messages.
type MsgKind uint8

const (
	// MsgNewModel carries full mixture parameters.
	MsgNewModel MsgKind = iota + 1
	// MsgWeightUpdate shifts weight to an already-transmitted model.
	MsgWeightUpdate
	// MsgDeletion removes weight (sliding windows, Section 7).
	MsgDeletion
)

func (k MsgKind) String() string {
	switch k {
	case MsgNewModel:
		return "new-model"
	case MsgWeightUpdate:
		return "weight-update"
	case MsgDeletion:
		return "deletion"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Message is one site→coordinator datagram.
type Message struct {
	Kind    MsgKind
	SiteID  int32
	ModelID int32
	Count   int64
	// Mixture is present iff Kind == MsgNewModel.
	Mixture *gaussian.Mixture
}

// ErrTruncated is returned by Decode for short buffers.
var ErrTruncated = errors.New("transport: truncated message")

const headerSize = 1 + 4 + 4 + 8 // kind + site + model + count

// WireSize returns the exact encoded size in bytes.
func (m Message) WireSize() int {
	n := headerSize
	if m.Kind == MsgNewModel && m.Mixture != nil {
		k, d := m.Mixture.K(), m.Mixture.Dim()
		n += 4 + 4 // K, d
		n += k * 8 // weights
		n += k * d * 8
		n += k * linalg.PackedLen(d) * 8
	}
	return n
}

// Encode serializes the message (little-endian, fixed layout).
func Encode(m Message) []byte {
	buf := make([]byte, 0, m.WireSize())
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.SiteID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ModelID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Count))
	if m.Kind == MsgNewModel && m.Mixture != nil {
		k, d := m.Mixture.K(), m.Mixture.Dim()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
		for j := 0; j < k; j++ {
			buf = appendFloat(buf, m.Mixture.Weight(j))
		}
		for j := 0; j < k; j++ {
			for _, v := range m.Mixture.Component(j).Mean() {
				buf = appendFloat(buf, v)
			}
		}
		for j := 0; j < k; j++ {
			for _, v := range m.Mixture.Component(j).Cov().Packed() {
				buf = appendFloat(buf, v)
			}
		}
	}
	return buf
}

// Decode parses a message produced by Encode.
func Decode(b []byte) (Message, error) {
	if len(b) < headerSize {
		return Message{}, ErrTruncated
	}
	m := Message{
		Kind:    MsgKind(b[0]),
		SiteID:  int32(binary.LittleEndian.Uint32(b[1:])),
		ModelID: int32(binary.LittleEndian.Uint32(b[5:])),
		Count:   int64(binary.LittleEndian.Uint64(b[9:])),
	}
	switch m.Kind {
	case MsgWeightUpdate, MsgDeletion:
		return m, nil
	case MsgNewModel:
	default:
		return Message{}, fmt.Errorf("transport: unknown kind %d", b[0])
	}
	b = b[headerSize:]
	if len(b) < 8 {
		return Message{}, ErrTruncated
	}
	k := int(binary.LittleEndian.Uint32(b))
	d := int(binary.LittleEndian.Uint32(b[4:]))
	b = b[8:]
	if k < 1 || d < 1 || k > 1<<20 || d > 1<<20 {
		return Message{}, fmt.Errorf("transport: implausible K=%d d=%d", k, d)
	}
	need := (k + k*d + k*linalg.PackedLen(d)) * 8
	if len(b) < need {
		return Message{}, ErrTruncated
	}
	weights := make([]float64, k)
	for j := range weights {
		weights[j] = readFloat(b)
		b = b[8:]
	}
	means := make([]linalg.Vector, k)
	for j := range means {
		means[j] = linalg.NewVector(d)
		for i := 0; i < d; i++ {
			means[j][i] = readFloat(b)
			b = b[8:]
		}
	}
	comps := make([]*gaussian.Component, k)
	for j := range comps {
		packed := make([]float64, linalg.PackedLen(d))
		for i := range packed {
			packed[i] = readFloat(b)
			b = b[8:]
		}
		cov := linalg.SymFromPacked(d, packed)
		c, err := gaussian.NewComponent(means[j], cov, 0)
		if err != nil {
			return Message{}, fmt.Errorf("transport: component %d: %w", j, err)
		}
		comps[j] = c
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return Message{}, fmt.Errorf("transport: %w", err)
	}
	m.Mixture = mix
	return m, nil
}

// FromSiteUpdate converts a site.Update into a wire message.
func FromSiteUpdate(u site.Update) Message {
	kind := MsgNewModel
	if u.Kind == site.WeightUpdate {
		kind = MsgWeightUpdate
	}
	return Message{
		Kind:    kind,
		SiteID:  int32(u.SiteID),
		ModelID: int32(u.ModelID),
		Count:   int64(u.Count),
		Mixture: u.Mixture,
	}
}

// ToSiteUpdate converts a decoded message back for coordinator consumption.
// Deletion messages have no site.Update equivalent and must be routed to
// Coordinator.HandleDeletion by the caller.
func (m Message) ToSiteUpdate() site.Update {
	kind := site.NewModel
	if m.Kind == MsgWeightUpdate {
		kind = site.WeightUpdate
	}
	return site.Update{
		SiteID:  int(m.SiteID),
		ModelID: int(m.ModelID),
		Kind:    kind,
		Count:   int(m.Count),
		Mixture: m.Mixture,
	}
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func readFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
