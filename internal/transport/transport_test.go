package transport

import (
	"math/rand"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func sampleMixture(rng *rand.Rand, k, d int) *gaussian.Mixture {
	comps := make([]*gaussian.Component, k)
	ws := make([]float64, k)
	for j := 0; j < k; j++ {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 5
		}
		cov := linalg.NewSym(d)
		for t := 0; t < d+2; t++ {
			v := linalg.NewVector(d)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			cov.AddOuterScaled(0.5, v)
		}
		for i := 0; i < d; i++ {
			cov.Add(i, i, 0.2)
		}
		comps[j] = gaussian.MustComponent(mean, cov)
		ws[j] = rng.Float64() + 0.05
	}
	return gaussian.MustMixture(ws, comps)
}

func TestRoundTripNewModel(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, kd := range [][2]int{{1, 1}, {3, 2}, {5, 4}, {2, 8}} {
		m := Message{
			Kind:    MsgNewModel,
			SiteID:  7,
			ModelID: 42,
			Count:   1567,
			Mixture: sampleMixture(rng, kd[0], kd[1]),
		}
		buf := Encode(m)
		if len(buf) != m.WireSize() {
			t.Fatalf("K=%d d=%d: encoded %d bytes, WireSize says %d", kd[0], kd[1], len(buf), m.WireSize())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.SiteID != 7 || got.ModelID != 42 || got.Count != 1567 || got.Kind != MsgNewModel {
			t.Fatalf("header mismatch: %+v", got)
		}
		if got.Mixture.K() != kd[0] || got.Mixture.Dim() != kd[1] {
			t.Fatalf("shape mismatch")
		}
		for j := 0; j < kd[0]; j++ {
			if got.Mixture.Weight(j) != m.Mixture.Weight(j) {
				t.Fatal("weight mismatch")
			}
			if !got.Mixture.Component(j).Equal(m.Mixture.Component(j), 0) {
				t.Fatal("component mismatch")
			}
		}
	}
}

func TestRoundTripWeightUpdateAndDeletion(t *testing.T) {
	for _, kind := range []MsgKind{MsgWeightUpdate, MsgDeletion} {
		m := Message{Kind: kind, SiteID: 3, ModelID: 9, Count: -250}
		buf := Encode(m)
		if len(buf) != headerSize {
			t.Fatalf("%v wire size = %d, want %d", kind, len(buf), headerSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("round trip: %+v != %+v", got, m)
		}
	}
}

func TestWireSizeFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	// K=5, d=4 (paper defaults): 17 + 8 + 5·8 + 5·4·8 + 5·10·8 = 625.
	m := Message{Kind: MsgNewModel, Mixture: sampleMixture(rng, 5, 4)}
	if got := m.WireSize(); got != 625 {
		t.Fatalf("WireSize(K=5,d=4) = %d, want 625", got)
	}
	// A weight update is 17 bytes — the synopsis saving in one number.
	if got := (Message{Kind: MsgWeightUpdate}).WireSize(); got != 17 {
		t.Fatalf("weight update size = %d", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, headerSize)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncated NewModel body.
	rng := rand.New(rand.NewSource(103))
	full := Encode(Message{Kind: MsgNewModel, Mixture: sampleMixture(rng, 2, 2)})
	for _, cut := range []int{headerSize, headerSize + 4, len(full) - 1} {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestSiteUpdateConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	mix := sampleMixture(rng, 2, 3)
	u := site.Update{SiteID: 4, ModelID: 11, Kind: site.NewModel, Mixture: mix, Count: 500}
	m := FromSiteUpdate(u)
	if m.Kind != MsgNewModel || m.SiteID != 4 || m.Count != 500 {
		t.Fatalf("FromSiteUpdate = %+v", m)
	}
	back := m.ToSiteUpdate()
	if back.SiteID != u.SiteID || back.ModelID != u.ModelID || back.Kind != u.Kind || back.Count != u.Count {
		t.Fatalf("round trip: %+v", back)
	}

	w := site.Update{SiteID: 1, ModelID: 2, Kind: site.WeightUpdate, Count: 100}
	if got := FromSiteUpdate(w); got.Kind != MsgWeightUpdate {
		t.Fatalf("weight update kind = %v", got.Kind)
	}
	if got := FromSiteUpdate(w).ToSiteUpdate(); got.Kind != site.WeightUpdate {
		t.Fatal("weight update did not survive round trip")
	}
}

func TestDecodeRejectsImplausibleShape(t *testing.T) {
	buf := make([]byte, headerSize+8)
	buf[0] = byte(MsgNewModel)
	// K = 0 encoded.
	if _, err := Decode(buf); err == nil {
		t.Fatal("K=0 accepted")
	}
}
