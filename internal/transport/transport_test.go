package transport

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func sampleMixture(rng *rand.Rand, k, d int) *gaussian.Mixture {
	comps := make([]*gaussian.Component, k)
	ws := make([]float64, k)
	for j := 0; j < k; j++ {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 5
		}
		cov := linalg.NewSym(d)
		for t := 0; t < d+2; t++ {
			v := linalg.NewVector(d)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			cov.AddOuterScaled(0.5, v)
		}
		for i := 0; i < d; i++ {
			cov.Add(i, i, 0.2)
		}
		comps[j] = gaussian.MustComponent(mean, cov)
		ws[j] = rng.Float64() + 0.05
	}
	return gaussian.MustMixture(ws, comps)
}

func TestRoundTripNewModel(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, kd := range [][2]int{{1, 1}, {3, 2}, {5, 4}, {2, 8}} {
		m := Message{
			Kind:    MsgNewModel,
			SiteID:  7,
			ModelID: 42,
			Count:   1567,
			Mixture: sampleMixture(rng, kd[0], kd[1]),
		}
		buf := Encode(m)
		if len(buf) != m.WireSize() {
			t.Fatalf("K=%d d=%d: encoded %d bytes, WireSize says %d", kd[0], kd[1], len(buf), m.WireSize())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.SiteID != 7 || got.ModelID != 42 || got.Count != 1567 || got.Kind != MsgNewModel {
			t.Fatalf("header mismatch: %+v", got)
		}
		if got.Mixture.K() != kd[0] || got.Mixture.Dim() != kd[1] {
			t.Fatalf("shape mismatch")
		}
		for j := 0; j < kd[0]; j++ {
			if got.Mixture.Weight(j) != m.Mixture.Weight(j) {
				t.Fatal("weight mismatch")
			}
			if !got.Mixture.Component(j).Equal(m.Mixture.Component(j), 0) {
				t.Fatal("component mismatch")
			}
		}
	}
}

func TestRoundTripWeightUpdateAndDeletion(t *testing.T) {
	for _, kind := range []MsgKind{MsgWeightUpdate, MsgDeletion} {
		m := Message{Kind: kind, SiteID: 3, ModelID: 9, Count: -250}
		buf := Encode(m)
		if len(buf) != headerSize {
			t.Fatalf("%v wire size = %d, want %d", kind, len(buf), headerSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("round trip: %+v != %+v", got, m)
		}
	}
}

func TestWireSizeFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	// K=5, d=4 (paper defaults): 17 + 8 + 5·8 + 5·4·8 + 5·10·8 = 625.
	m := Message{Kind: MsgNewModel, Mixture: sampleMixture(rng, 5, 4)}
	if got := m.WireSize(); got != 625 {
		t.Fatalf("WireSize(K=5,d=4) = %d, want 625", got)
	}
	// A weight update is 17 bytes — the synopsis saving in one number.
	if got := (Message{Kind: MsgWeightUpdate}).WireSize(); got != 17 {
		t.Fatalf("weight update size = %d", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, headerSize)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncated NewModel body.
	rng := rand.New(rand.NewSource(103))
	full := Encode(Message{Kind: MsgNewModel, Mixture: sampleMixture(rng, 2, 2)})
	for _, cut := range []int{headerSize, headerSize + 4, len(full) - 1} {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestSiteUpdateConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	mix := sampleMixture(rng, 2, 3)
	u := site.Update{SiteID: 4, ModelID: 11, Kind: site.NewModel, Mixture: mix, Count: 500}
	m := FromSiteUpdate(u)
	if m.Kind != MsgNewModel || m.SiteID != 4 || m.Count != 500 {
		t.Fatalf("FromSiteUpdate = %+v", m)
	}
	back := m.ToSiteUpdate()
	if back.SiteID != u.SiteID || back.ModelID != u.ModelID || back.Kind != u.Kind || back.Count != u.Count {
		t.Fatalf("round trip: %+v", back)
	}

	w := site.Update{SiteID: 1, ModelID: 2, Kind: site.WeightUpdate, Count: 100}
	if got := FromSiteUpdate(w); got.Kind != MsgWeightUpdate {
		t.Fatalf("weight update kind = %v", got.Kind)
	}
	if got := FromSiteUpdate(w).ToSiteUpdate(); got.Kind != site.WeightUpdate {
		t.Fatal("weight update did not survive round trip")
	}
}

func TestRoundTripVersioned(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	msgs := []Message{
		{Kind: MsgNewModel, SiteID: 2, ModelID: 5, Count: 900, Epoch: 3, Seq: 17, Mixture: sampleMixture(rng, 2, 3)},
		{Kind: MsgWeightUpdate, SiteID: 2, ModelID: 5, Count: 200, Epoch: 1, Seq: 1},
		{Kind: MsgDeletion, SiteID: 9, ModelID: 1, Count: -50, Seq: math.MaxUint64},
		{Kind: MsgWeightUpdate, SiteID: 1, ModelID: 1, Count: 10, Epoch: 7}, // epoch without seq
	}
	for _, m := range msgs {
		buf := Encode(m)
		if len(buf) != m.WireSize() {
			t.Fatalf("%v: encoded %d bytes, WireSize says %d", m.Kind, len(buf), m.WireSize())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Epoch != m.Epoch || got.Seq != m.Seq {
			t.Fatalf("delivery metadata lost: got epoch=%d seq=%d, want epoch=%d seq=%d",
				got.Epoch, got.Seq, m.Epoch, m.Seq)
		}
		if got.Kind != m.Kind || got.SiteID != m.SiteID || got.ModelID != m.ModelID || got.Count != m.Count {
			t.Fatalf("header mismatch: %+v vs %+v", got, m)
		}
		if m.Mixture != nil && (got.Mixture == nil || got.Mixture.K() != m.Mixture.K()) {
			t.Fatal("mixture lost in versioned frame")
		}
	}
}

func TestVersionedBackwardCompatible(t *testing.T) {
	// A v1 frame and a v2 frame of the same logical message decode to the
	// same payload; the v2 frame costs exactly the marker + epoch + seq.
	v1 := Message{Kind: MsgWeightUpdate, SiteID: 4, ModelID: 2, Count: 300}
	v2 := v1
	v2.Epoch, v2.Seq = 1, 42
	b1, b2 := Encode(v1), Encode(v2)
	if len(b2)-len(b1) != v2ExtraSize {
		t.Fatalf("v2 overhead = %d bytes, want %d", len(b2)-len(b1), v2ExtraSize)
	}
	got, err := Decode(b2)
	if err != nil {
		t.Fatal(err)
	}
	got.Epoch, got.Seq = 0, 0
	if got != v1 {
		t.Fatalf("v2 payload diverged: %+v vs %+v", got, v1)
	}
	// Truncated v2 headers are rejected, not misparsed as v1.
	for cut := 1; cut < len(b2); cut++ {
		if _, err := Decode(b2[:cut]); err == nil {
			t.Fatalf("truncated v2 frame of %d bytes accepted", cut)
		}
	}
}

func TestDecodeRejectsImplausibleShape(t *testing.T) {
	buf := make([]byte, headerSize+8)
	buf[0] = byte(MsgNewModel)
	// K = 0 encoded.
	if _, err := Decode(buf); err == nil {
		t.Fatal("K=0 accepted")
	}
}
