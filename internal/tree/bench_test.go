package tree

import (
	"math/rand"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// BenchmarkTreeLoad500 is the scale proof for multi-layer deployments:
// 500 simulated sites behind two fan-in aggregator layers (63 + 8
// aggregators, fan-out 8), each site streaming two chunks — 100k records
// per iteration — with exact upload-on-change replication at every hop
// on the virtual clock. The custom metrics pin the aggregation dividend:
// root-mem-B is the root coordinator's memory holding one pseudo-model
// per direct child, while flat-mem-B is what a single coordinator
// serving the same 500 sites directly would hold — the per-layer
// Theorem-3 bound in practice. Run with -benchtime 1x: each iteration is
// a full deployment.
func BenchmarkTreeLoad500(b *testing.B) {
	topo, err := Spec{Leaves: 500, AggLayers: 2, FanOut: 8, Link: LinkSpec{Latency: 0.01}}.Build()
	if err != nil {
		b.Fatal(err)
	}
	const recordsPerLeaf = 200 // two chunks per site
	regimes := []float64{0, 200, -200}
	var root, flat *coordinator.Coordinator
	var wireBytes int
	for i := 0; i < b.N; i++ {
		ref, err := coordinator.New(testCoordCfg())
		if err != nil {
			b.Fatal(err)
		}
		d, err := NewDeployment(Config{
			Topology: topo, Site: testSiteCfg(), Coord: testCoordCfg(),
			Seed: int64(i + 1), ExactSync: true,
			OnEmit: func(leafID int, u site.Update) {
				if err := ref.HandleUpdate(u); err != nil {
					b.Fatalf("reference apply (leaf %d): %v", leafID, err)
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		for rec := 0; rec < recordsPerLeaf; rec++ {
			for s := 0; s < d.NumSites(); s++ {
				mean := regimes[s%len(regimes)]
				x := linalg.Vector{mean + 4*float64(1-2*(rec%2)) + rng.NormFloat64()}
				if err := d.Feed(s, x); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := d.Drain(); err != nil {
			b.Fatal(err)
		}
		if d.Pending() != 0 {
			b.Fatalf("%d frames still queued after drain", d.Pending())
		}
		root, flat, wireBytes = d.NodeCoordinator(0), ref, d.TotalBytes()
	}
	if root.MemoryBytes() >= flat.MemoryBytes() {
		b.Fatalf("root coordinator memory %d >= flat deployment's %d — fan-in bought nothing",
			root.MemoryBytes(), flat.MemoryBytes())
	}
	b.ReportMetric(float64(topo.NumSites()), "sites")
	b.ReportMetric(float64(topo.NumNodes()-1), "aggs")
	b.ReportMetric(float64(root.MemoryBytes()), "root-mem-B")
	b.ReportMetric(float64(flat.MemoryBytes()), "flat-mem-B")
	b.ReportMetric(float64(wireBytes), "wire-B")
}
