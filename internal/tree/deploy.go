package tree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"

	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/gaussian"
	"cludistream/internal/hier"
	"cludistream/internal/linalg"
	"cludistream/internal/netsim"
	"cludistream/internal/persist"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// ErrRecoveryMismatch reports that a recovered aggregator's state is not
// bit-identical to its pre-crash state (surfaced by Config.SelfCheck).
var ErrRecoveryMismatch = errors.New("tree: recovered node state differs from pre-crash state")

// CrashSpec schedules one interior-node crash: at Start the node's durable
// store is cut off mid-write, its uplink retransmission queue dies with the
// process, and arrivals are lost until End, when the node recovers from
// checkpoint + WAL and rejoins its parent under a bumped epoch.
type CrashSpec struct {
	Node  int     `json:"node"` // internal node index (0 = root)
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Config parameterizes a Deployment.
type Config struct {
	Topology Topology
	// Site is the per-leaf template; SiteID and Seed are assigned per leaf
	// (SiteID 1..NumSites, Seed derived from Config.Seed).
	Site site.Config
	// Coord is the per-internal-node coordinator template.
	Coord coordinator.Config
	// Seed drives leaf seeds and all per-edge fault randomness.
	Seed int64
	// ArrivalRate is records/second per site on the virtual clock
	// (default 1000).
	ArrivalRate float64

	// WeightTol/MeanTol tune each aggregator's upload-on-change detection
	// (zero = the aggd defaults 0.05/0.25); ExactSync forces bit-level
	// change detection, which DST uses so every hop replicates faithfully.
	WeightTol, MeanTol float64
	ExactSync          bool

	// DropProb/DupProb inject iid loss and duplicate delivery on every
	// edge; NodeOutages adds partition windows during which nothing
	// reaches the given internal node (state intact — distinct from
	// Crashes, which lose in-memory state and recover from disk).
	DropProb, DupProb float64
	NodeOutages       map[int][]netsim.Outage
	// RetryBackoff/RetryMaxBackoff shape courier retransmission (defaults
	// 0.05/2.0 simulated seconds).
	RetryBackoff, RetryMaxBackoff float64

	// Crashes schedules interior-node crash/recovery through the durable
	// path; StateDir must be set when Crashes is non-empty. Only crashing
	// nodes pay for a durable store.
	Crashes         []CrashSpec
	StateDir        string
	CheckpointEvery int
	Fsync           persist.FsyncMode
	// SelfCheck byte-compares pre-crash vs recovered state on every
	// recovery (requires Fsync always, the default).
	SelfCheck bool

	Telemetry *telemetry.Registry
	// OnApply observes every message applied at an internal node, after
	// the dedupe verdict admitted it — the DST per-layer invariant hook.
	OnApply func(node int, msg transport.Message)
	// OnEmit observes every update a leaf site emits, before transport —
	// DST tees these into a flat reference coordinator.
	OnEmit func(leafID int, u site.Update)
}

// edge is one directed uplink: child (a leaf or an aggregator) → internal
// node, carrying versioned frames through an exactly-once courier.
type edge struct {
	fromID int // wire SiteID of the sender
	toNode int
	link   *netsim.Link
	cour   *netsim.Courier
	epoch  uint32
	seq    uint64
	// sent is the per-epoch sender-side entitlement at exact wire sizes:
	// what the receiver applies can never exceed it, and must equal the
	// current epoch's tally once the deployment drains.
	sent map[uint32]*SendTally
}

// SendTally is one epoch's sender-side message/byte entitlement.
type SendTally struct {
	Msgs  int
	Bytes int
}

func (e *edge) tally() *SendTally {
	t := e.sent[e.epoch]
	if t == nil {
		t = &SendTally{}
		e.sent[e.epoch] = t
	}
	return t
}

type node struct {
	idx      int
	pseudoID int // sender id at its parent (0 for the root)
	depth    int
	coord    *coordinator.Coordinator
	ded      *durable.Dedupe
	store    *durable.Store // nil unless this node has scheduled crashes
	stateDir string
	mirror   *hier.UploadMirror // nil for the root
	up       *edge              // nil for the root
	crashed  bool
	preCrash []byte // SelfCheck state snapshot taken at crash time

	duplicates int
	resets     int
}

type leafNode struct {
	st  *site.Site
	up  *edge
	fed int
}

// RecoveryStats aggregates crash/recovery accounting across all nodes.
type RecoveryStats struct {
	Restarts        int
	RecordsReplayed int
	TornBytes       int
}

// Deployment is a live tree on the virtual clock.
type Deployment struct {
	cfg    Config
	sim    *netsim.Simulator
	nodes  []*node
	leaves []*leafNode
	order  []*node // internal nodes, deepest first (final-sync order)

	recov       RecoveryStats
	deliveryErr error
}

// NewDeployment validates the configuration and builds the tree: leaves
// are real site processors, internal nodes are real coordinators with
// upload mirrors, edges are faulty netsim links behind couriers.
func NewDeployment(cfg Config) (*Deployment, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.ArrivalRate <= 0 {
		cfg.ArrivalRate = 1000
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 0.05
	}
	if cfg.RetryMaxBackoff <= 0 {
		cfg.RetryMaxBackoff = 2.0
	}
	if cfg.Fsync == "" {
		cfg.Fsync = persist.FsyncAlways
	}
	if cfg.SelfCheck && cfg.Fsync != persist.FsyncAlways {
		return nil, fmt.Errorf("tree: SelfCheck requires Fsync %q, got %q", persist.FsyncAlways, cfg.Fsync)
	}
	crashing := map[int][]netsim.Outage{}
	for i, c := range cfg.Crashes {
		if c.Node < 0 || c.Node >= cfg.Topology.NumNodes() {
			return nil, fmt.Errorf("tree: crash %d targets node %d of %d", i, c.Node, cfg.Topology.NumNodes())
		}
		if !(c.End > c.Start) || c.Start < 0 {
			return nil, fmt.Errorf("tree: crash %d window [%v, %v)", i, c.Start, c.End)
		}
		crashing[c.Node] = append(crashing[c.Node], netsim.Outage{Start: c.Start, End: c.End})
	}
	if len(crashing) > 0 && cfg.StateDir == "" {
		return nil, fmt.Errorf("tree: Crashes need a StateDir for the durable stores")
	}

	d := &Deployment{cfg: cfg, sim: netsim.NewSimulator()}
	topo := &cfg.Topology

	// Internal nodes. A node's arrivals are lost during its partition and
	// crash windows; only crash-scheduled nodes open a durable store.
	for n := 0; n < topo.NumNodes(); n++ {
		nd := &node{
			idx:      n,
			depth:    topo.NodeDepth(n),
			pseudoID: pseudoSiteID(topo, n),
		}
		if _, willCrash := crashing[n]; willCrash {
			nd.stateDir = filepath.Join(cfg.StateDir, fmt.Sprintf("node%d", n))
			store, rec, err := durable.Open(nd.stateDir, cfg.Coord, d.storeOptions())
			if err != nil {
				return nil, err
			}
			nd.store, nd.coord, nd.ded = store, rec.Coord, rec.Dedupe
		} else {
			coord, err := coordinator.New(cfg.Coord)
			if err != nil {
				return nil, err
			}
			nd.coord, nd.ded = coord, durable.NewDedupe()
		}
		if n > 0 {
			nd.mirror = &hier.UploadMirror{
				NodeID:    nd.pseudoID,
				WeightTol: cfg.WeightTol,
				MeanTol:   cfg.MeanTol,
				Exact:     cfg.ExactSync,
			}
			if nd.mirror.WeightTol == 0 {
				nd.mirror.WeightTol = 0.05
			}
			if nd.mirror.MeanTol == 0 {
				nd.mirror.MeanTol = 0.25
			}
		}
		d.nodes = append(d.nodes, nd)
	}

	// Receiver-side fault windows: partitions plus crash windows.
	outages := func(n int) []netsim.Outage {
		return append(append([]netsim.Outage(nil), cfg.NodeOutages[n]...), crashing[n]...)
	}

	// Aggregator uplinks.
	edgeOrdinal := 0
	for n := 1; n < topo.NumNodes(); n++ {
		spec := topo.Aggs[n-1]
		e, err := d.newEdge(d.nodes[n].pseudoID, spec.Parent, spec.Link, outages(spec.Parent), edgeOrdinal)
		if err != nil {
			return nil, err
		}
		d.nodes[n].up = e
		edgeOrdinal++
	}
	// Leaves and their uplinks.
	for i, spec := range topo.Leaves {
		sc := cfg.Site
		sc.SiteID = i + 1
		sc.Seed = cfg.Seed + int64(i+1)*7919
		st, err := site.New(sc)
		if err != nil {
			return nil, err
		}
		e, err := d.newEdge(sc.SiteID, spec.Parent, spec.Link, outages(spec.Parent), edgeOrdinal)
		if err != nil {
			return nil, err
		}
		d.leaves = append(d.leaves, &leafNode{st: st, up: e})
		edgeOrdinal++
	}

	// Deepest-first node order for final sync rounds.
	d.order = append([]*node(nil), d.nodes...)
	for i := 1; i < len(d.order); i++ {
		for j := i; j > 0 && d.order[j].depth > d.order[j-1].depth; j-- {
			d.order[j], d.order[j-1] = d.order[j-1], d.order[j]
		}
	}

	// Crash/recovery schedule.
	for _, c := range cfg.Crashes {
		nd := d.nodes[c.Node]
		d.sim.ScheduleAt(c.Start, func() { d.crashNode(nd) })
		d.sim.ScheduleAt(c.End, func() { d.recoverNode(nd) })
	}
	return d, nil
}

// pseudoSiteID returns the wire id internal node n presents to its parent:
// leaf sites own 1..NumSites, aggregators follow.
func pseudoSiteID(topo *Topology, n int) int {
	if n == 0 {
		return 0
	}
	return topo.NumSites() + n
}

func (d *Deployment) storeOptions() durable.Options {
	return durable.Options{
		CheckpointEvery: d.cfg.CheckpointEvery,
		Fsync:           d.cfg.Fsync,
		Telemetry:       d.cfg.Telemetry,
		Logf:            func(string, ...any) {},
	}
}

func (d *Deployment) newEdge(fromID, toNode int, spec LinkSpec, outages []netsim.Outage, ordinal int) (*edge, error) {
	e := &edge{fromID: fromID, toNode: toNode, epoch: 1, sent: map[uint32]*SendTally{}}
	var plan *netsim.FaultPlan
	if d.cfg.DropProb > 0 || d.cfg.DupProb > 0 || len(outages) > 0 {
		plan = &netsim.FaultPlan{
			DropProb: d.cfg.DropProb,
			DupProb:  d.cfg.DupProb,
			Outages:  outages,
		}
		if plan.DropProb > 0 || plan.DupProb > 0 {
			plan.Rand = rand.New(rand.NewSource(d.cfg.Seed*31 + int64(ordinal)*1000003 + 7))
		}
	}
	link, err := d.sim.NewFaultyLink(spec.Latency, spec.Bandwidth, plan, func(payload []byte) {
		d.deliver(e, payload)
	})
	if err != nil {
		return nil, err
	}
	link.SetTelemetry(d.cfg.Telemetry)
	cour, err := d.sim.NewCourier(link, d.cfg.RetryBackoff, d.cfg.RetryMaxBackoff,
		rand.New(rand.NewSource(d.cfg.Seed*17+int64(ordinal)*999983+3)))
	if err != nil {
		return nil, err
	}
	cour.SetTelemetry(d.cfg.Telemetry)
	e.link, e.cour = link, cour
	return e, nil
}

// send stamps the next (epoch, seq) on msg, charges the sender-side
// entitlement, and hands the frame to the edge's courier.
func (d *Deployment) send(e *edge, msg transport.Message) {
	e.seq++
	msg.Seq = e.seq
	msg.Epoch = e.epoch
	msg.SiteID = int32(e.fromID)
	payload := transport.Encode(msg)
	t := e.tally()
	t.Msgs++
	t.Bytes += len(payload)
	e.cour.Send(payload)
}

// deliver is every edge's receive path: WAL-append before dedupe (crashing
// nodes), admit, apply, observe, upload-on-change toward the parent.
func (d *Deployment) deliver(e *edge, payload []byte) {
	if d.deliveryErr != nil {
		return
	}
	n := d.nodes[e.toNode]
	if n.crashed {
		// A duplicate delivery scheduled before the crash window can land
		// inside it: the process is down, the frame dies at the socket.
		return
	}
	msg, err := transport.Decode(payload)
	if err != nil {
		d.deliveryErr = fmt.Errorf("tree: node %d decode: %w", n.idx, err)
		return
	}
	if n.store != nil {
		if err := n.store.Append(payload); err != nil {
			d.deliveryErr = fmt.Errorf("tree: node %d WAL append: %w", n.idx, err)
			return
		}
	}
	switch n.ded.Admit(msg.SiteID, msg.Epoch, msg.Seq) {
	case durable.DropStale, durable.DropDuplicate:
		n.duplicates++
		return
	case durable.AdmitNewEpoch:
		n.coord.ResetSite(int(msg.SiteID))
		n.resets++
	}
	if msg.Kind == transport.MsgDeletion {
		err = n.coord.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	} else {
		err = n.coord.HandleUpdate(msg.ToSiteUpdate())
	}
	if err != nil && d.deliveryErr == nil {
		d.deliveryErr = fmt.Errorf("tree: node %d apply: %w", n.idx, err)
	}
	// Observers see the message even when the apply was rejected — a
	// rejected duplicate is exactly what the DST shadow dedupe wants to
	// pin, matching the facade's OnApply semantics.
	if d.cfg.OnApply != nil {
		d.cfg.OnApply(n.idx, msg)
	}
	if d.deliveryErr != nil {
		return
	}
	if n.store != nil && n.store.NeedCheckpoint() {
		if err := n.store.Checkpoint(n.coord, n.ded); err != nil {
			d.deliveryErr = fmt.Errorf("tree: node %d checkpoint: %w", n.idx, err)
			return
		}
	}
	d.syncUp(n)
}

// syncUp runs the node's upload-on-change rule toward its parent.
func (d *Deployment) syncUp(n *node) {
	if n.up == nil || d.deliveryErr != nil {
		return
	}
	for _, msg := range n.mirror.Sync(n.coord.GlobalMixture(), n.coord.TotalWeight()) {
		d.send(n.up, msg)
	}
}

func (d *Deployment) crashNode(n *node) {
	if d.deliveryErr != nil || n.crashed {
		return
	}
	n.crashed = true
	if d.cfg.SelfCheck {
		want, err := encodeNodeState(n)
		if err != nil {
			d.deliveryErr = err
			return
		}
		n.preCrash = want
	}
	if err := n.store.Crash(); err != nil {
		d.deliveryErr = fmt.Errorf("tree: node %d crash: %w", n.idx, err)
		return
	}
	if n.up != nil {
		// The uplink retransmission queue lives in the dead process.
		n.up.cour.Crash()
	}
}

func (d *Deployment) recoverNode(n *node) {
	if d.deliveryErr != nil || !n.crashed {
		return
	}
	store, rec, err := durable.Open(n.stateDir, d.cfg.Coord, d.storeOptions())
	if err != nil {
		d.deliveryErr = fmt.Errorf("tree: node %d recover: %w", n.idx, err)
		return
	}
	n.store, n.coord, n.ded = store, rec.Coord, rec.Dedupe
	n.crashed = false
	d.recov.Restarts++
	d.recov.RecordsReplayed += rec.RecordsReplayed
	d.recov.TornBytes += rec.TornBytes
	if n.preCrash != nil {
		got, err := encodeNodeState(n)
		if err != nil {
			d.deliveryErr = err
			return
		}
		if !bytes.Equal(n.preCrash, got) {
			d.deliveryErr = fmt.Errorf("%w (node %d: pre-crash %d bytes, recovered %d bytes)",
				ErrRecoveryMismatch, n.idx, len(n.preCrash), len(got))
			return
		}
		n.preCrash = nil
	}
	if n.up != nil {
		// Rejoin the parent as a new incarnation: fresh sequence space,
		// no deletion owed for models the parent will discard on the
		// first new-epoch frame.
		n.up.epoch++
		n.up.seq = 0
		n.mirror.Reset()
		d.syncUp(n)
	}
}

func encodeNodeState(n *node) ([]byte, error) {
	var buf bytes.Buffer
	st := &persist.CoordinatorState{
		Applied: n.store.Applied(), Snapshot: n.coord.Snapshot(), Dedupe: n.ded.Entries(),
	}
	if err := persist.SaveCoordinatorState(&buf, st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Feed hands one record to leaf i, advancing the virtual clock by the
// leaf's arrival rate, and ships any resulting site updates on its uplink.
func (d *Deployment) Feed(i int, x linalg.Vector) error {
	if i < 0 || i >= len(d.leaves) {
		return fmt.Errorf("tree: leaf index %d of %d", i, len(d.leaves))
	}
	lf := d.leaves[i]
	t := float64(lf.fed) / d.cfg.ArrivalRate
	lf.fed++
	d.sim.RunUntil(t)
	ups, err := lf.st.Observe(x)
	if err != nil {
		return err
	}
	for _, u := range ups {
		if d.cfg.OnEmit != nil {
			d.cfg.OnEmit(i+1, u)
		}
		d.send(lf.up, transport.FromSiteUpdate(u))
	}
	return d.deliveryErr
}

// Drain runs the simulator dry and then forces exact final sync rounds,
// deepest layer first, until no node owes its parent an upload — the
// barrier after which every layer's state is final.
func (d *Deployment) Drain() error {
	maxRounds := d.cfg.Topology.Depth() + 3
	for round := 0; ; round++ {
		d.sim.Run()
		if d.deliveryErr != nil {
			return d.deliveryErr
		}
		sent := false
		for _, n := range d.order {
			if n.up == nil {
				continue
			}
			// Tolerance-suppressed drift must flush at the end of the
			// run, so the final barrier uses exact change detection.
			n.mirror.Exact = true
			before := n.up.seq
			d.syncUp(n)
			if n.up.seq != before {
				sent = true
			}
			n.mirror.Exact = d.cfg.ExactSync
		}
		if d.deliveryErr != nil {
			return d.deliveryErr
		}
		if !sent {
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("tree: drain did not converge after %d rounds", round)
		}
	}
}

// Close releases durable resources.
func (d *Deployment) Close() error {
	var first error
	for _, n := range d.nodes {
		if n.store != nil && !n.crashed {
			if err := n.store.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// InjectDedupeFault breaks every node's sequence-number dedupe — the
// deliberate bug DST uses to prove the per-hop exactly-once invariant has
// teeth. Never set in production paths.
func (d *Deployment) InjectDedupeFault() {
	for _, n := range d.nodes {
		n.ded.Broken = true
	}
}

// --- observability ---------------------------------------------------------

// NumSites returns the leaf count.
func (d *Deployment) NumSites() int { return len(d.leaves) }

// NumNodes returns the internal node count.
func (d *Deployment) NumNodes() int { return len(d.nodes) }

// Now returns the virtual-clock time.
func (d *Deployment) Now() float64 { return d.sim.Now() }

// LeafSite returns leaf i's site processor.
func (d *Deployment) LeafSite(i int) *site.Site { return d.leaves[i].st }

// NodeCoordinator returns internal node n's coordinator.
func (d *Deployment) NodeCoordinator(n int) *coordinator.Coordinator { return d.nodes[n].coord }

// NodePseudoID returns the wire id node n presents to its parent.
func (d *Deployment) NodePseudoID(n int) int { return d.nodes[n].pseudoID }

// RootMixture returns the root coordinator's merged model.
func (d *Deployment) RootMixture() *gaussian.Mixture { return d.nodes[0].coord.GlobalMixture() }

// Recovery returns crash/recovery accounting.
func (d *Deployment) Recovery() RecoveryStats { return d.recov }

// Pending sums undelivered courier queue depths across all edges.
func (d *Deployment) Pending() int {
	total := 0
	for _, e := range d.edges() {
		total += e.cour.Pending()
	}
	return total
}

func (d *Deployment) edges() []*edge {
	var out []*edge
	for _, n := range d.nodes {
		if n.up != nil {
			out = append(out, n.up)
		}
	}
	for _, lf := range d.leaves {
		out = append(out, lf.up)
	}
	return out
}

// SenderEpoch returns the current epoch of the edge child→node (child is
// the wire SiteID the receiver sees).
func (d *Deployment) SenderEpoch(toNode, childID int) uint32 {
	if e := d.findEdge(toNode, childID); e != nil {
		return e.epoch
	}
	return 0
}

// SentTally returns the sender-side entitlement of edge child→node for one
// epoch: how many messages and exact wire bytes were handed to transport.
func (d *Deployment) SentTally(toNode, childID int, epoch uint32) SendTally {
	if e := d.findEdge(toNode, childID); e != nil {
		if t := e.sent[epoch]; t != nil {
			return *t
		}
	}
	return SendTally{}
}

func (d *Deployment) findEdge(toNode, childID int) *edge {
	for _, e := range d.edges() {
		if e.toNode == toNode && e.fromID == childID {
			return e
		}
	}
	return nil
}

// EdgeStats is one edge's transport accounting.
type EdgeStats struct {
	From, To        int // wire sender id → internal node index
	Depth           int // receiver depth (0 = root): the layer this edge feeds
	Epoch           uint32
	SentMsgs        int // current-epoch entitlement
	SentBytes       int
	WireBytes       int // link-level total, including retransmissions
	GoodputBytes    int
	RetransmitBytes int
	DroppedBytes    int
	Pending         int
}

// EdgeStatsAll returns per-edge accounting (aggregator uplinks first, then
// leaf uplinks, both in topology order).
func (d *Deployment) EdgeStatsAll() []EdgeStats {
	var out []EdgeStats
	for _, e := range d.edges() {
		cur := e.sent[e.epoch]
		if cur == nil {
			cur = &SendTally{}
		}
		_, droppedBytes := e.link.Dropped()
		out = append(out, EdgeStats{
			From: e.fromID, To: e.toNode,
			Depth:     d.nodes[e.toNode].depth,
			Epoch:     e.epoch,
			SentMsgs:  cur.Msgs,
			SentBytes: cur.Bytes,
			WireBytes: e.link.BytesSent(), GoodputBytes: e.link.GoodputBytes(),
			RetransmitBytes: e.link.RetransmitBytes(), DroppedBytes: droppedBytes,
			Pending: e.cour.Pending(),
		})
	}
	return out
}

// LayerBytes sums wire bytes by the depth of the layer each edge feeds:
// index 0 is traffic into the root, index 1 into depth-1 aggregators, etc.
func (d *Deployment) LayerBytes() []int {
	out := make([]int, d.cfg.Topology.Depth())
	for _, e := range d.edges() {
		out[d.nodes[e.toNode].depth] += e.link.BytesSent()
	}
	return out
}

// TotalBytes sums wire bytes over every edge.
func (d *Deployment) TotalBytes() int {
	total := 0
	for _, e := range d.edges() {
		total += e.link.BytesSent()
	}
	return total
}
