package tree

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/netsim"
	"cludistream/internal/site"
)

func testSiteCfg() site.Config {
	return site.Config{Dim: 1, K: 2, Epsilon: 0.5, Delta: 0.01, ChunkSize: 100}
}

func testCoordCfg() coordinator.Config {
	return coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}
}

// feedAll pushes n records per leaf round-robin, drawing leaf i's records
// from regimes[i % len(regimes)].
func feedAll(t *testing.T, d *Deployment, regimes []float64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	for rec := 0; rec < n; rec++ {
		for i := 0; i < d.NumSites(); i++ {
			mean := regimes[i%len(regimes)]
			x := linalg.Vector{mean + 4*float64(1-2*(rec%2)) + rng.NormFloat64()}
			if err := d.Feed(i, x); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// refCoordinator builds the flat-deployment reference: every leaf update
// teed straight into one coordinator.
func refCoordinator(t *testing.T) (*coordinator.Coordinator, func(int, site.Update)) {
	t.Helper()
	ref, err := coordinator.New(testCoordCfg())
	if err != nil {
		t.Fatal(err)
	}
	return ref, func(leafID int, u site.Update) {
		if err := ref.HandleUpdate(u); err != nil {
			t.Fatalf("reference apply (leaf %d): %v", leafID, err)
		}
	}
}

// assertEquivalent compares the root mixture against the flat reference:
// same component count, same integer record mass, and positionally close
// weights/means/covariances (both are canonically ordered). Bit-equality
// is not expected — moment-preserving merges are associative only in
// exact arithmetic — but the drift must be at floating-point scale.
func assertEquivalent(t *testing.T, root, ref *coordinator.Coordinator) {
	t.Helper()
	rm, fm := root.GlobalMixture(), ref.GlobalMixture()
	if (rm == nil) != (fm == nil) {
		t.Fatalf("root mixture nil=%v, reference nil=%v", rm == nil, fm == nil)
	}
	if rm == nil {
		return
	}
	if math.Round(root.TotalWeight()) != math.Round(ref.TotalWeight()) {
		t.Fatalf("record mass %v (tree) vs %v (flat)", root.TotalWeight(), ref.TotalWeight())
	}
	if rm.K() != fm.K() {
		t.Fatalf("root K=%d, reference K=%d", rm.K(), fm.K())
	}
	const tol = 1e-6
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	for j := 0; j < rm.K(); j++ {
		if !close(rm.Weight(j), fm.Weight(j)) {
			t.Fatalf("component %d weight %v vs %v", j, rm.Weight(j), fm.Weight(j))
		}
		cr, cf := rm.Component(j), fm.Component(j)
		for i := 0; i < rm.Dim(); i++ {
			if !close(cr.Mean()[i], cf.Mean()[i]) {
				t.Fatalf("component %d mean %v vs %v", j, cr.Mean(), cf.Mean())
			}
		}
		for r := 0; r < rm.Dim(); r++ {
			for c := r; c < rm.Dim(); c++ {
				if !close(cr.Cov().At(r, c), cf.Cov().At(r, c)) {
					t.Fatalf("component %d cov[%d,%d] %v vs %v", j, r, c, cr.Cov().At(r, c), cf.Cov().At(r, c))
				}
			}
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	if err := (&Topology{}).Validate(); err == nil {
		t.Error("empty topology accepted")
	}
	// Aggregator with no children.
	bad := Topology{
		Aggs:   []AggSpec{{Parent: 0}},
		Leaves: []LeafSpec{{Parent: 0}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("childless aggregator accepted")
	}
	// Forward parent reference (cycle attempt).
	cyc := Topology{
		Aggs:   []AggSpec{{Parent: 2}, {Parent: 1}},
		Leaves: []LeafSpec{{Parent: 1}, {Parent: 2}},
	}
	if err := cyc.Validate(); err == nil {
		t.Error("forward parent reference accepted")
	}
	if err := (&Topology{Leaves: []LeafSpec{{Parent: 5}}}).Validate(); err == nil {
		t.Error("out-of-range leaf parent accepted")
	}
	if err := (&Topology{Leaves: []LeafSpec{{Link: LinkSpec{Latency: -1}}}}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestBalancedSpecShapes(t *testing.T) {
	topo, err := Spec{Leaves: 500, AggLayers: 2, FanOut: 8, Link: LinkSpec{Latency: 0.01}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSites() != 500 {
		t.Fatalf("sites = %d", topo.NumSites())
	}
	// ceil(500/8)=63 bottom aggs, ceil(63/8)=8 above them.
	if len(topo.Aggs) != 71 {
		t.Fatalf("aggs = %d, want 63+8", len(topo.Aggs))
	}
	if topo.Depth() != 3 {
		t.Fatalf("depth = %d", topo.Depth())
	}
	layers := topo.Layers()
	if len(layers) != 3 || len(layers[0]) != 1 || len(layers[1]) != 8 || len(layers[2]) != 63 {
		t.Fatalf("layer sizes = %v", [][]int{layers[0], layers[1], layers[2]})
	}
	// Flat star.
	flat, err := Spec{Leaves: 10}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumNodes() != 1 || flat.Depth() != 1 {
		t.Fatalf("flat star: nodes=%d depth=%d", flat.NumNodes(), flat.Depth())
	}
}

func TestTreeMatchesFlatReference(t *testing.T) {
	topo, err := Spec{Leaves: 6, AggLayers: 1, FanOut: 3, Link: LinkSpec{Latency: 0.01}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, onEmit := refCoordinator(t)
	d, err := NewDeployment(Config{
		Topology: topo, Site: testSiteCfg(), Coord: testCoordCfg(),
		Seed: 3, ExactSync: true, OnEmit: onEmit,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, d, []float64{0, 200, -200}, 250)
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatalf("%d frames still queued after drain", d.Pending())
	}
	assertEquivalent(t, d.NodeCoordinator(0), ref)
	// Byte accounting closes: per-edge wire bytes sum to the totals, and
	// per-layer sums partition them.
	var perEdge, perLayer int
	for _, es := range d.EdgeStatsAll() {
		perEdge += es.WireBytes
	}
	for _, b := range d.LayerBytes() {
		perLayer += b
	}
	if perEdge != d.TotalBytes() || perLayer != d.TotalBytes() {
		t.Fatalf("edge sum %d, layer sum %d, total %d", perEdge, perLayer, d.TotalBytes())
	}
	if d.TotalBytes() == 0 {
		t.Fatal("no traffic at all")
	}
}

func TestTreeMatchesFlatUnderFaults(t *testing.T) {
	topo, err := Spec{Leaves: 8, AggLayers: 2, FanOut: 3, Link: LinkSpec{Latency: 0.02}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, onEmit := refCoordinator(t)
	d, err := NewDeployment(Config{
		Topology: topo, Site: testSiteCfg(), Coord: testCoordCfg(),
		Seed: 4, ExactSync: true, OnEmit: onEmit,
		DropProb: 0.2, DupProb: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, d, []float64{0, 300}, 250)
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, d.NodeCoordinator(0), ref)
	// Loss under retransmission shows up as retransmit bytes, never as a
	// broken ledger: wire = goodput + dropped on every edge.
	sawRetransmit := false
	for _, es := range d.EdgeStatsAll() {
		if es.WireBytes != es.GoodputBytes+es.DroppedBytes {
			t.Fatalf("edge %d->%d: wire %d != goodput %d + dropped %d",
				es.From, es.To, es.WireBytes, es.GoodputBytes, es.DroppedBytes)
		}
		if es.RetransmitBytes > 0 {
			sawRetransmit = true
		}
	}
	if !sawRetransmit {
		t.Fatal("20% loss produced no retransmissions")
	}
}

func TestAggregatorCrashRecovery(t *testing.T) {
	topo, err := Spec{Leaves: 6, AggLayers: 1, FanOut: 3, Link: LinkSpec{Latency: 0.01}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, onEmit := refCoordinator(t)
	d, err := NewDeployment(Config{
		Topology: topo, Site: testSiteCfg(), Coord: testCoordCfg(),
		Seed: 5, ExactSync: true, OnEmit: onEmit,
		DropProb: 0.1, DupProb: 0.1,
		Crashes:  []CrashSpec{{Node: 1, Start: 0.12, End: 0.2}},
		StateDir: t.TempDir(), CheckpointEvery: 4, SelfCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	feedAll(t, d, []float64{0, 250}, 400)
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	rec := d.Recovery()
	if rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rec.Restarts)
	}
	// The recovered aggregator rejoined its parent under a bumped epoch.
	if ep := d.SenderEpoch(0, d.NodePseudoID(1)); ep < 2 {
		t.Fatalf("aggregator uplink epoch = %d after crash, want ≥ 2", ep)
	}
	assertEquivalent(t, d.NodeCoordinator(0), ref)
}

func TestPartitionedAggregatorCatchesUp(t *testing.T) {
	topo, err := Spec{Leaves: 4, AggLayers: 1, FanOut: 2, Link: LinkSpec{Latency: 0.01}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, onEmit := refCoordinator(t)
	d, err := NewDeployment(Config{
		Topology: topo, Site: testSiteCfg(), Coord: testCoordCfg(),
		Seed: 6, ExactSync: true, OnEmit: onEmit,
		NodeOutages: map[int][]netsim.Outage{1: {{Start: 0.05, End: 0.25}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, d, []float64{0, 200}, 300)
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, d.NodeCoordinator(0), ref)
}
