// Package tree makes the multi-layer networks of Section 7 first-class:
// a declarative topology — aggregator nodes with arbitrary fan-in and
// heterogeneous per-link latency/bandwidth — deployed over the netsim
// virtual clock, with every aggregator running the real coordinator-merge
// plus upload-on-change logic from cmd/aggd (hier.UploadMirror) and every
// edge carrying the versioned v2 wire protocol through an exactly-once
// courier. Aggregator crashes recover through the durable checkpoint/WAL
// path and re-join their parent under a bumped epoch, exactly like a real
// aggd process restarting.
package tree

import (
	"fmt"
	"math"
)

// LinkSpec is the physical shape of one edge: propagation latency in
// simulated seconds and an optional finite bandwidth in bytes/second
// (0 = infinite).
type LinkSpec struct {
	Latency   float64 `json:"latency"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
}

func (l LinkSpec) validate(what string) error {
	if math.IsNaN(l.Latency) || math.IsInf(l.Latency, 0) || l.Latency < 0 {
		return fmt.Errorf("tree: %s latency %v", what, l.Latency)
	}
	if math.IsNaN(l.Bandwidth) || math.IsInf(l.Bandwidth, 0) || l.Bandwidth < 0 {
		return fmt.Errorf("tree: %s bandwidth %v", what, l.Bandwidth)
	}
	return nil
}

// AggSpec declares one aggregator node. Aggregator i (0-based) is internal
// node index i+1; the root coordinator is node 0. Parent is the internal
// node index this aggregator uploads to and must be smaller than i+1, so a
// topology literal is acyclic by construction.
type AggSpec struct {
	Parent int      `json:"parent"`
	Link   LinkSpec `json:"link"`
}

// LeafSpec attaches one site to an internal node.
type LeafSpec struct {
	Parent int      `json:"parent"`
	Link   LinkSpec `json:"link"`
}

// Topology is a declarative tree: node 0 is the root coordinator,
// aggregator i is node i+1, and every leaf is a site under some internal
// node. The zero Aggs value is the flat star deployment of the base paper.
type Topology struct {
	Aggs   []AggSpec  `json:"aggs,omitempty"`
	Leaves []LeafSpec `json:"leaves"`
}

// NumNodes returns the internal node count (root + aggregators).
func (t *Topology) NumNodes() int { return 1 + len(t.Aggs) }

// NumSites returns the leaf count.
func (t *Topology) NumSites() int { return len(t.Leaves) }

// Validate checks structural soundness: every aggregator's parent precedes
// it (acyclicity), every parent index is in range, no aggregator is
// childless, and every link spec is sane.
func (t *Topology) Validate() error {
	if len(t.Leaves) == 0 {
		return fmt.Errorf("tree: topology without leaves")
	}
	children := make([]int, t.NumNodes())
	for i, a := range t.Aggs {
		node := i + 1
		if a.Parent < 0 || a.Parent >= node {
			return fmt.Errorf("tree: agg %d parent %d (want 0..%d)", i, a.Parent, node-1)
		}
		children[a.Parent]++
		if err := a.Link.validate(fmt.Sprintf("agg %d uplink", i)); err != nil {
			return err
		}
	}
	for i, lf := range t.Leaves {
		if lf.Parent < 0 || lf.Parent >= t.NumNodes() {
			return fmt.Errorf("tree: leaf %d parent %d (want 0..%d)", i, lf.Parent, t.NumNodes()-1)
		}
		children[lf.Parent]++
		if err := lf.Link.validate(fmt.Sprintf("leaf %d uplink", i)); err != nil {
			return err
		}
	}
	for node := 1; node < t.NumNodes(); node++ {
		if children[node] == 0 {
			return fmt.Errorf("tree: agg %d (node %d) has no children", node-1, node)
		}
	}
	return nil
}

// NodeDepth returns the depth of internal node n (root = 0).
func (t *Topology) NodeDepth(n int) int {
	depth := 0
	for n != 0 {
		n = t.Aggs[n-1].Parent
		depth++
	}
	return depth
}

// Depth returns the maximum number of edges from any leaf to the root.
func (t *Topology) Depth() int {
	max := 0
	for _, lf := range t.Leaves {
		if d := t.NodeDepth(lf.Parent) + 1; d > max {
			max = d
		}
	}
	return max
}

// Layers groups internal node indices by depth: Layers()[0] = {0} (the
// root), Layers()[1] = the aggregators directly under it, and so on.
func (t *Topology) Layers() [][]int {
	var layers [][]int
	for n := 0; n < t.NumNodes(); n++ {
		d := t.NodeDepth(n)
		for len(layers) <= d {
			layers = append(layers, nil)
		}
		layers[d] = append(layers[d], n)
	}
	return layers
}

// Spec is the declarative shape of a balanced deployment: Leaves sites
// behind AggLayers layers of fan-in aggregators, every edge sharing the
// default Link shape. Build assigns leaves round-robin to the bottom
// aggregator layer and shrinks each layer above by FanOut.
type Spec struct {
	Leaves    int
	AggLayers int // aggregator layers between the sites and the root (0 = flat)
	FanOut    int // children per aggregator
	Link      LinkSpec
}

// Build constructs the balanced topology.
func (s Spec) Build() (Topology, error) {
	if s.Leaves < 1 {
		return Topology{}, fmt.Errorf("tree: spec with %d leaves", s.Leaves)
	}
	if s.AggLayers < 0 {
		return Topology{}, fmt.Errorf("tree: spec with %d agg layers", s.AggLayers)
	}
	if s.AggLayers > 0 && s.FanOut < 1 {
		return Topology{}, fmt.Errorf("tree: spec with fan-out %d", s.FanOut)
	}
	var topo Topology
	// Layer sizes from the bottom (next to the leaves) upward.
	sizes := make([]int, s.AggLayers)
	below := s.Leaves
	for l := s.AggLayers - 1; l >= 0; l-- {
		n := (below + s.FanOut - 1) / s.FanOut
		if n < 1 {
			n = 1
		}
		sizes[l] = n
		below = n
	}
	// Emit aggregators top-down so parents precede children.
	offset := make([]int, s.AggLayers) // node index of each layer's first agg
	for l := 0; l < s.AggLayers; l++ {
		offset[l] = topo.NumNodes()
		for i := 0; i < sizes[l]; i++ {
			parent := 0
			if l > 0 {
				parent = offset[l-1] + i%sizes[l-1]
			}
			topo.Aggs = append(topo.Aggs, AggSpec{Parent: parent, Link: s.Link})
		}
	}
	for i := 0; i < s.Leaves; i++ {
		parent := 0
		if s.AggLayers > 0 {
			bottom := s.AggLayers - 1
			parent = offset[bottom] + i%sizes[bottom]
		}
		topo.Leaves = append(topo.Leaves, LeafSpec{Parent: parent, Link: s.Link})
	}
	if err := topo.Validate(); err != nil {
		return Topology{}, err
	}
	return topo, nil
}
