package window

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/gaussian"
	"cludistream/internal/site"
)

// TestQuickSlidingDeletionEqualsRecomputed is the Section 7 soundness
// property: maintaining a sliding window incrementally — crediting each
// chunk's records to its governing model and debiting the Tracker's
// negative-weight deletions as chunks expire — must leave exactly the
// per-model record counts that recomputing Mixture over the window's
// chunk range yields directly. Checked after every chunk of a random
// drift program, including the single-chunk-horizon edge.
func TestQuickSlidingDeletionEqualsRecomputed(t *testing.T) {
	const chunkSize = 100
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := site.New(site.Config{
			SiteID: 1, Dim: 1, K: 2, Epsilon: 0.5, Delta: 0.01,
			CMax: 8, Seed: seed, ChunkSize: chunkSize,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		horizon := 1 + rng.Intn(4)
		tr, err := NewTracker(s, horizon)
		if err != nil {
			t.Log(err)
			return false
		}

		// Empty-window edge: nothing fed, nothing expires, no mixture.
		if ds := tr.Expire(1); len(ds) != 0 {
			t.Logf("seed %d: expiry before any chunk: %v", seed, ds)
			return false
		}
		if Mixture(s, 1, horizon) != nil {
			t.Logf("seed %d: empty site produced a window mixture", seed)
			return false
		}

		means := []float64{0, 200, -200}
		net := map[int]int{} // modelID → records currently inside the window
		totalChunks := horizon + 1 + rng.Intn(5)
		for chunk := 0; chunk < totalChunks; chunk++ {
			mean := means[(chunk/2)%len(means)]
			feedChunk(t, s, mean, chunkSize, rng)

			newest := s.ChunksSeen()
			id, ok := governingModel(s, newest)
			if !ok {
				t.Logf("seed %d: chunk %d has no governing model", seed, newest)
				return false
			}
			net[id] += chunkSize
			for _, d := range tr.Expire(1) {
				net[d.ModelID] -= d.Count
				if net[d.ModelID] == 0 {
					delete(net, d.ModelID)
				}
			}

			// The window must hold exactly min(newest, horizon) chunks.
			want := chunkSize * minInt(newest, horizon)
			got := 0
			for _, n := range net {
				got += n
			}
			if got != want {
				t.Logf("seed %d: chunk %d: window holds %d records, want %d", seed, newest, got, want)
				return false
			}

			direct := Mixture(s, newest-horizon+1, newest)
			if !sameMixtureAsNetCounts(t, s, net, direct) {
				t.Logf("seed %d: chunk %d: deletion-maintained window diverged from recomputed mixture", seed, newest)
				return false
			}
		}
		return true
	}
	n := 12
	if testing.Short() {
		n = 4
	}
	if err := quick.Check(property, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

func feedChunk(t *testing.T, s *site.Site, mean float64, n int, rng *rand.Rand) {
	t.Helper()
	feed(t, s, regime(mean), n, rng)
}

// sameMixtureAsNetCounts rebuilds the window mixture from the
// incrementally maintained per-model record counts and compares it to the
// directly recomputed one. Components are shared pointers between the site
// models and both mixtures, so matching by identity is exact; weights get
// a small tolerance because the two normalizations sum in different
// orders.
func sameMixtureAsNetCounts(t *testing.T, s *site.Site, net map[int]int, direct *gaussian.Mixture) bool {
	t.Helper()
	if direct == nil {
		return len(net) == 0
	}
	want := map[*gaussian.Component]float64{}
	var total float64
	for _, m := range s.Models() {
		n, ok := net[m.ID]
		if !ok {
			continue
		}
		for j := 0; j < m.Mixture.K(); j++ {
			want[m.Mixture.Component(j)] += m.Mixture.Weight(j) * float64(n)
			total += m.Mixture.Weight(j) * float64(n)
		}
	}
	if len(want) != direct.K() {
		t.Logf("component count: direct has %d, net counts give %d", direct.K(), len(want))
		return false
	}
	for j := 0; j < direct.K(); j++ {
		w, ok := want[direct.Component(j)]
		if !ok {
			t.Logf("direct component %d not present in net-count reconstruction", j)
			return false
		}
		if math.Abs(direct.Weight(j)-w/total) > 1e-9 {
			t.Logf("component %d weight %v, net counts give %v", j, direct.Weight(j), w/total)
			return false
		}
	}
	return true
}
