// Package window implements the windowing extensions of Section 7 on top
// of the remote site's model/event lists: landmark windows (native to
// CluDistream), sliding windows via negative-weight deletion messages, and
// evolving analysis over arbitrary chunk ranges.
package window

import (
	"fmt"

	"cludistream/internal/gaussian"
	"cludistream/internal/site"
)

// Deletion is the negative-weight message of Section 7: count records of
// the given model expired from the sliding window. The coordinator
// subtracts the weight and drops the model when it reaches zero.
type Deletion struct {
	SiteID  int
	ModelID int
	Count   int
}

// Tracker watches a site's chunk history and converts chunks that leave a
// sliding window of horizonChunks chunks into Deletion messages.
type Tracker struct {
	s             *site.Site
	horizonChunks int
	expired       int // chunks already expired
}

// NewTracker wraps a site with a sliding-window horizon measured in chunks
// (the natural granularity: the paper notes the absolute error between a
// user window and a chunk-aligned one is at most M/2).
func NewTracker(s *site.Site, horizonChunks int) (*Tracker, error) {
	if horizonChunks < 1 {
		return nil, fmt.Errorf("window: horizon %d chunks", horizonChunks)
	}
	return &Tracker{s: s, horizonChunks: horizonChunks}, nil
}

// Expire returns deletion messages for every chunk that has fallen out of
// the window since the last call. Call it after feeding records to the
// site.
func (t *Tracker) Expire(siteID int) []Deletion {
	var out []Deletion
	newest := t.s.ChunksSeen()
	for t.expired < newest-t.horizonChunks {
		chunk := t.expired + 1
		id, ok := governingModel(t.s, chunk)
		if ok {
			out = append(out, Deletion{SiteID: siteID, ModelID: id, Count: t.s.ChunkSize()})
		}
		t.expired++
	}
	return coalesce(out)
}

// ExpiredChunks returns how many chunks have been expired so far.
func (t *Tracker) ExpiredChunks() int { return t.expired }

// coalesce merges consecutive deletions for the same model.
func coalesce(ds []Deletion) []Deletion {
	var out []Deletion
	for _, d := range ds {
		if n := len(out); n > 0 && out[n-1].SiteID == d.SiteID && out[n-1].ModelID == d.ModelID {
			out[n-1].Count += d.Count
			continue
		}
		out = append(out, d)
	}
	return out
}

// governingModel resolves which model explained the given chunk: a closed
// event-list span, or the current model's open span.
func governingModel(s *site.Site, chunk int) (int, bool) {
	if id, ok := s.Events().ModelAt(chunk); ok {
		return id, true
	}
	if cur := s.Current(); cur != nil && chunk <= s.ChunksSeen() {
		return cur.ID, true
	}
	return 0, false
}

// Mixture composes the site's models into one mixture covering chunks
// [startChunk, endChunk], weighting each model by the number of window
// chunks it governed times the chunk size. This serves sliding windows
// (start = newest-H+1), landmark windows (start = 1) and evolving-analysis
// queries alike. Returns nil when the range covers no chunks.
func Mixture(s *site.Site, startChunk, endChunk int) *gaussian.Mixture {
	if startChunk < 1 {
		startChunk = 1
	}
	if endChunk > s.ChunksSeen() {
		endChunk = s.ChunksSeen()
	}
	if endChunk < startChunk {
		return nil
	}
	counts := map[int]int{} // modelID → chunks governed inside the window
	order := []int{}
	for _, e := range s.Events().Query(startChunk, endChunk) {
		lo, hi := maxInt(e.StartChunk, startChunk), minInt(e.EndChunk, endChunk)
		if _, seen := counts[e.ModelID]; !seen {
			order = append(order, e.ModelID)
		}
		counts[e.ModelID] += hi - lo + 1
	}
	if cur := s.Current(); cur != nil {
		curStart := s.ChunksSeen() - chunksGoverned(s, cur) + 1
		lo, hi := maxInt(curStart, startChunk), minInt(s.ChunksSeen(), endChunk)
		if hi >= lo {
			if _, seen := counts[cur.ID]; !seen {
				order = append(order, cur.ID)
			}
			counts[cur.ID] += hi - lo + 1
		}
	}

	byID := map[int]*site.Model{}
	for _, m := range s.Models() {
		byID[m.ID] = m
	}
	var comps []*gaussian.Component
	var weights []float64
	for _, id := range order {
		m := byID[id]
		if m == nil {
			continue
		}
		w := float64(counts[id] * s.ChunkSize())
		for j := 0; j < m.Mixture.K(); j++ {
			comps = append(comps, m.Mixture.Component(j))
			weights = append(weights, m.Mixture.Weight(j)*w)
		}
	}
	if len(comps) == 0 {
		return nil
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil
	}
	return mix
}

// chunksGoverned counts the chunks of the current open span: the site's
// total minus everything in closed spans... except re-activated models also
// have closed spans, so derive from the event list instead: open span =
// total chunks − last closed end.
func chunksGoverned(s *site.Site, cur *site.Model) int {
	ev := s.Events()
	lastEnd := 0
	if n := ev.Len(); n > 0 {
		lastEnd = ev.At(n - 1).EndChunk
	}
	return s.ChunksSeen() - lastEnd
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
