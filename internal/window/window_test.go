package window

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func newSite(t *testing.T) *site.Site {
	t.Helper()
	s, err := site.New(site.Config{
		SiteID: 1, Dim: 1, K: 2, Epsilon: 0.5, Delta: 0.01,
		CMax: 4, Seed: 1, ChunkSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func regime(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func feed(t *testing.T, s *site.Site, mix *gaussian.Mixture, n int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Observe(mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(newSite(t), 0); err == nil {
		t.Fatal("horizon 0 accepted")
	}
}

func TestTrackerNoExpiryInsideHorizon(t *testing.T) {
	s := newSite(t)
	tr, _ := NewTracker(s, 5)
	rng := rand.New(rand.NewSource(1))
	feed(t, s, regime(0), 200*5, rng) // exactly 5 chunks
	if ds := tr.Expire(1); len(ds) != 0 {
		t.Fatalf("premature expiry: %v", ds)
	}
}

func TestTrackerExpiresOldChunks(t *testing.T) {
	s := newSite(t)
	tr, _ := NewTracker(s, 3)
	rng := rand.New(rand.NewSource(2))
	feed(t, s, regime(0), 200*7, rng) // 7 chunks, horizon 3 → expire 4
	ds := tr.Expire(1)
	var total int
	for _, d := range ds {
		if d.SiteID != 1 || d.ModelID != 1 {
			t.Fatalf("deletion = %+v", d)
		}
		total += d.Count
	}
	if total != 4*200 {
		t.Fatalf("expired %d records, want 800", total)
	}
	// Consecutive same-model deletions coalesce into one message.
	if len(ds) != 1 {
		t.Fatalf("deletions not coalesced: %v", ds)
	}
	if tr.ExpiredChunks() != 4 {
		t.Fatalf("ExpiredChunks = %d", tr.ExpiredChunks())
	}
	// Second call: nothing new.
	if ds := tr.Expire(1); len(ds) != 0 {
		t.Fatalf("double expiry: %v", ds)
	}
}

func TestTrackerSpansModelBoundary(t *testing.T) {
	s := newSite(t)
	tr, _ := NewTracker(s, 2)
	rng := rand.New(rand.NewSource(3))
	feed(t, s, regime(0), 200*3, rng)  // model 1: chunks 1-3
	feed(t, s, regime(50), 200*3, rng) // model 2: chunks 4-6
	ds := tr.Expire(1)
	// Chunks 1-4 expired: 3 for model 1, 1 for model 2.
	if len(ds) != 2 {
		t.Fatalf("deletions = %v", ds)
	}
	if ds[0].ModelID != 1 || ds[0].Count != 600 {
		t.Fatalf("first deletion = %+v", ds[0])
	}
	if ds[1].ModelID != 2 || ds[1].Count != 200 {
		t.Fatalf("second deletion = %+v", ds[1])
	}
}

func TestMixtureLandmarkEqualsSiteLandmark(t *testing.T) {
	s := newSite(t)
	rng := rand.New(rand.NewSource(4))
	feed(t, s, regime(0), 200*4, rng)
	feed(t, s, regime(50), 200*2, rng)
	wm := Mixture(s, 1, s.ChunksSeen())
	lm := s.LandmarkMixture()
	if wm.K() != lm.K() {
		t.Fatalf("K mismatch: %d vs %d", wm.K(), lm.K())
	}
	// Both weight models by records governed, so the weights must agree.
	for j := 0; j < wm.K(); j++ {
		if math.Abs(wm.Weight(j)-lm.Weight(j)) > 1e-9 {
			t.Fatalf("weights differ at %d: %v vs %v", j, wm.Weight(j), lm.Weight(j))
		}
	}
}

func TestMixtureSlidingWindowFollowsRecentRegime(t *testing.T) {
	s := newSite(t)
	rng := rand.New(rand.NewSource(5))
	feed(t, s, regime(0), 200*5, rng)
	feed(t, s, regime(50), 200*5, rng)
	// Window = last 3 chunks: only the new regime.
	recent := Mixture(s, s.ChunksSeen()-2, s.ChunksSeen())
	if recent == nil {
		t.Fatal("nil window mixture")
	}
	for j := 0; j < recent.K(); j++ {
		if mu := recent.Component(j).Mean()[0]; mu < 30 {
			t.Fatalf("old-regime component (μ=%v) in recent window", mu)
		}
	}
	// Full landmark window has both regimes.
	full := Mixture(s, 1, s.ChunksSeen())
	var hasOld bool
	for j := 0; j < full.K(); j++ {
		if full.Component(j).Mean()[0] < 30 {
			hasOld = true
		}
	}
	if !hasOld {
		t.Fatal("landmark window lost the old regime")
	}
}

func TestMixtureEvolvingQueryMidStream(t *testing.T) {
	s := newSite(t)
	rng := rand.New(rand.NewSource(6))
	feed(t, s, regime(0), 200*3, rng)   // chunks 1-3
	feed(t, s, regime(50), 200*3, rng)  // chunks 4-6
	feed(t, s, regime(-50), 200*3, rng) // chunks 7-9
	mid := Mixture(s, 4, 6)
	if mid == nil {
		t.Fatal("nil mid-stream mixture")
	}
	for j := 0; j < mid.K(); j++ {
		mu := mid.Component(j).Mean()[0]
		if mu < 30 {
			t.Fatalf("window [4,6] contains component at %v", mu)
		}
	}
}

func TestMixtureEdgeCases(t *testing.T) {
	s := newSite(t)
	if Mixture(s, 1, 10) != nil {
		t.Fatal("empty site produced a mixture")
	}
	rng := rand.New(rand.NewSource(7))
	feed(t, s, regime(0), 200*2, rng)
	if Mixture(s, 5, 3) != nil {
		t.Fatal("inverted range produced a mixture")
	}
	// Clamping: a huge range behaves like the landmark window.
	m := Mixture(s, -100, 1000)
	if m == nil || m.K() != 2 {
		t.Fatalf("clamped mixture = %v", m)
	}
}

func TestMixturePartialOverlapWeights(t *testing.T) {
	s := newSite(t)
	rng := rand.New(rand.NewSource(8))
	feed(t, s, regime(0), 200*4, rng)  // model 1: chunks 1-4
	feed(t, s, regime(50), 200*4, rng) // model 2: chunks 5-8
	// Window [4,5]: one chunk each → equal total weight per model.
	m := Mixture(s, 4, 5)
	var w1, w2 float64
	for j := 0; j < m.K(); j++ {
		if m.Component(j).Mean()[0] < 30 {
			w1 += m.Weight(j)
		} else {
			w2 += m.Weight(j)
		}
	}
	if math.Abs(w1-w2) > 1e-9 {
		t.Fatalf("partial overlap weights: %v vs %v", w1, w2)
	}
}
