package cludistream

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"cludistream/internal/netsim"
	"cludistream/internal/stream"
	"cludistream/internal/telemetry"
)

// fingerprint renders the system's observable clustering output with every
// float64 spelled out bit-for-bit, so two runs compare exactly — not "close".
func fingerprint(sys *System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bytes=%d msgs=%d\n", sys.TotalBytes(), sys.TotalMessages())
	gm := sys.GlobalMixture()
	if gm == nil {
		b.WriteString("global=nil\n")
		return b.String()
	}
	for j := 0; j < gm.K(); j++ {
		fmt.Fprintf(&b, "w[%d]=%016x\n", j, math.Float64bits(gm.Weight(j)))
		comp := gm.Component(j)
		for _, m := range comp.Mean() {
			fmt.Fprintf(&b, " %016x", math.Float64bits(m))
		}
		b.WriteString("\n")
		cov := comp.Cov()
		d := comp.Dim()
		for r := 0; r < d; r++ {
			for c := 0; c <= r; c++ {
				fmt.Fprintf(&b, " %016x", math.Float64bits(cov.At(r, c)))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// runStream drives a fresh system over a deterministic synthetic stream and
// returns its output fingerprint.
func runStream(t *testing.T, cfg Config, n int) (*System, string) {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := stream.NewSynthetic(stream.SyntheticConfig{Dim: 1, K: 2, Pd: 0.5, RegimeLen: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FeedRoundRobin(stream.Take(g, n)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	return sys, fingerprint(sys)
}

// TestTelemetryBitIdentical pins the tentpole guarantee: enabling telemetry
// changes nothing about clustering output — byte counts, message counts, and
// every weight, mean, and covariance entry of the global mixture are
// bit-for-bit identical with the registry attached or absent.
func TestTelemetryBitIdentical(t *testing.T) {
	const n = 200 * 5 * 3
	_, off := runStream(t, smallConfig(), n)
	cfg := smallConfig()
	cfg.Telemetry = telemetry.NewRegistry()
	_, on := runStream(t, cfg, n)
	if off != on {
		t.Fatalf("telemetry changed clustering output:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
}

// TestTelemetryBitIdenticalFaulty repeats the pin under fault-tolerant
// delivery, which exercises the courier, link-drop, and dedupe paths.
func TestTelemetryBitIdenticalFaulty(t *testing.T) {
	faulty := func(reg *telemetry.Registry) Config {
		cfg := smallConfig()
		cfg.Fault = &netsim.FaultPlan{DropProb: 0.3, Rand: rand.New(rand.NewSource(11))}
		cfg.Telemetry = reg
		return cfg
	}
	const n = 200 * 5 * 3
	_, off := runStream(t, faulty(nil), n)
	reg := telemetry.NewRegistry()
	sysOn, on := runStream(t, faulty(reg), n)
	if off != on {
		t.Fatalf("telemetry changed faulty-mode output:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
	// The registry must agree with the system's own delivery accounting.
	snap := reg.Snapshot()
	d := sysOn.DeliveryStats()
	if got := snap.Counters["sim.retransmit_bytes"]; got != int64(d.RetransmitBytes) {
		t.Fatalf("sim.retransmit_bytes = %d, DeliveryStats says %d", got, d.RetransmitBytes)
	}
	if got := snap.Counters["coord.dedupe_dropped"]; got != int64(d.Duplicates) {
		t.Fatalf("coord.dedupe_dropped = %d, DeliveryStats says %d", got, d.Duplicates)
	}
	if got := snap.Counters["sim.courier_retries"]; got != int64(d.Retries) {
		t.Fatalf("sim.courier_retries = %d, DeliveryStats says %d", got, d.Retries)
	}
}

// TestTelemetrySnapshotContents checks that one instrumented run populates
// the decision counters the debug endpoints advertise.
func TestTelemetrySnapshotContents(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := smallConfig()
	cfg.Telemetry = reg
	sys, _ := runStream(t, cfg, 200*5*3)
	snap := reg.Snapshot()
	for _, name := range []string{
		"site.records", "site.chunks", "site.chunks_tested",
		"site.chunks_fit", "site.chunks_refit",
		"site.em_runs", "em.fits", "em.iterations",
		"coord.updates_handled", "coord.new_models",
		"sim.bytes_sent", "sim.messages",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, snap.Counters[name])
		}
	}
	if got := snap.Counters["site.records"]; got != int64(200*5*3) {
		t.Errorf("site.records = %d, want %d", got, 200*5*3)
	}
	if got := snap.Counters["sim.bytes_sent"]; got != int64(sys.TotalBytes()) {
		t.Errorf("sim.bytes_sent = %d, TotalBytes says %d", got, sys.TotalBytes())
	}
	if got := snap.Counters["sim.messages"]; got != int64(sys.TotalMessages()) {
		t.Errorf("sim.messages = %d, TotalMessages says %d", got, sys.TotalMessages())
	}
	if h, ok := snap.Histograms["site.jfit_margin"]; !ok || h.Count == 0 {
		t.Errorf("site.jfit_margin histogram missing or empty: %+v", h)
	}
	if snap.Journal.LastSeq == 0 {
		t.Error("journal recorded no events")
	}
	// Decision counters must be internally consistent: every chunk is
	// either fit (to the current model or a reactivated archive entry) or
	// refit by EM.
	fit := snap.Counters["site.chunks_fit"]
	react := snap.Counters["site.chunks_reactivated"]
	refit := snap.Counters["site.chunks_refit"]
	if total := snap.Counters["site.chunks"]; fit+react+refit != total {
		t.Errorf("fit %d + reactivated %d + refit %d != chunks %d", fit, react, refit, total)
	}
}
