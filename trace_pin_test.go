package cludistream

import (
	"math/rand"
	"strings"
	"testing"

	"cludistream/internal/netsim"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// mixtureOnly strips the delivery-accounting line from a fingerprint,
// leaving the bit-exact global mixture. Tracing legitimately changes byte
// counts (the 16-byte wire suffix) but must never change the mixture.
func mixtureOnly(fp string) string {
	if i := strings.Index(fp, "\n"); i >= 0 {
		return fp[i+1:]
	}
	return fp
}

// tracedConfig returns smallConfig with a tracing registry attached.
func tracedConfig() (Config, *telemetry.Registry) {
	cfg := smallConfig()
	reg := telemetry.NewRegistry()
	reg.EnableTracing(telemetry.TraceOptions{})
	cfg.Telemetry = reg
	return cfg, reg
}

// TestTracingBitIdentical pins the tracing guarantee: minting a trace per
// chunk and a span per pipeline step changes nothing about clustering
// output — message counts and every bit of the global mixture are
// identical with tracing on or off, and the only wire-level difference is
// exactly one 16-byte suffix per traced transmission.
func TestTracingBitIdentical(t *testing.T) {
	const n = 200 * 5 * 3
	sysOff, off := runStream(t, smallConfig(), n)
	cfg, reg := tracedConfig()
	sysOn, on := runStream(t, cfg, n)

	if mixtureOnly(off) != mixtureOnly(on) {
		t.Fatalf("tracing changed clustering output:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
	if sysOff.TotalMessages() != sysOn.TotalMessages() {
		t.Fatalf("tracing changed message count: %d vs %d",
			sysOff.TotalMessages(), sysOn.TotalMessages())
	}

	tr := reg.Tracer()
	if tr.SpanCount("chunk") == 0 {
		t.Fatal("tracing was on but no traces were minted — vacuous pin")
	}
	// Every traced transmission carries the suffix and records one
	// wire-send span, so the byte delta reconciles exactly.
	wireSends := tr.SpanCount("wire-send")
	if wireSends == 0 {
		t.Fatal("no wire-send spans recorded")
	}
	wantDelta := wireSends * int64(transport.TraceSuffixSize)
	if delta := int64(sysOn.TotalBytes() - sysOff.TotalBytes()); delta != wantDelta {
		t.Fatalf("byte delta = %d, want %d (16 bytes × %d traced sends)",
			delta, wantDelta, wireSends)
	}
	// The freshness SLOs observed real lags on the virtual clock.
	snap := reg.Snapshot()
	for _, name := range []string{
		"trace.ingest_to_decision_seconds",
		"trace.decision_to_apply_seconds",
		"trace.apply_to_visible_seconds",
	} {
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Errorf("SLO histogram %q never observed", name)
		}
	}
	if len(tr.Snapshot().Slowest) == 0 {
		t.Error("slowest-trace reservoir is empty after a full run")
	}
}

// TestTracingBitIdenticalFaulty repeats the pin under lossy links, which
// exercises the courier retransmission and dedupe spans: drops and
// retransmits each record their own wire-send span, so the suffix
// accounting still reconciles exactly.
func TestTracingBitIdenticalFaulty(t *testing.T) {
	faulty := func(cfg Config) Config {
		cfg.Fault = &netsim.FaultPlan{DropProb: 0.3, Rand: rand.New(rand.NewSource(11))}
		return cfg
	}
	const n = 200 * 5 * 3
	sysOff, off := runStream(t, faulty(smallConfig()), n)
	cfg, reg := tracedConfig()
	sysOn, on := runStream(t, faulty(cfg), n)

	if mixtureOnly(off) != mixtureOnly(on) {
		t.Fatalf("tracing changed faulty-mode output:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
	if sysOff.TotalMessages() != sysOn.TotalMessages() {
		t.Fatalf("tracing changed message count: %d vs %d",
			sysOff.TotalMessages(), sysOn.TotalMessages())
	}
	tr := reg.Tracer()
	wantDelta := tr.SpanCount("wire-send") * int64(transport.TraceSuffixSize)
	if delta := int64(sysOn.TotalBytes() - sysOff.TotalBytes()); delta != wantDelta {
		t.Fatalf("byte delta = %d, want %d under faults", delta, wantDelta)
	}
	// Dedupe verdicts were traced for every delivery (applies + duplicates).
	d := sysOn.DeliveryStats()
	if got := tr.SpanCount("dedupe"); got == 0 || got != int64(d.Duplicates)+tr.SpanCount("apply") {
		t.Fatalf("dedupe spans = %d, duplicates = %d, apply spans = %d",
			got, d.Duplicates, tr.SpanCount("apply"))
	}
}
